// Package defense implements a kernel-level mitigation in the spirit of
// the paper's related work (§8): an EDGI-style ("Event Driven Guarding of
// Invariants", Pu & Wei, ISSSE'06) guard that tracks the invariants a
// privileged process establishes with its check calls and blocks other
// users from invalidating the name binding before the use call completes.
//
// This is a deliberately simplified reconstruction — enough to demonstrate
// on the simulator that the attacks the paper makes near-certain on
// multiprocessors are driven back to zero by invariant guarding, at the
// cost the Monitor mode quantifies. Simplifications: only invariants
// established by uid 0 are guarded (a malicious user must not be able to
// DoS root by guarding paths themselves), and guards expire after a TTL of
// virtual time so stale windows cannot wedge the namespace.
package defense

import (
	"fmt"
	"time"

	"tocttou/internal/fs"
	"tocttou/internal/sim"
)

// Mode selects enforcement behavior.
type Mode int

const (
	// Monitor counts would-be violations without blocking them.
	Monitor Mode = iota + 1
	// Enforce denies violating operations with EACCES.
	Enforce
	// Delay holds violating operations until the guarded window closes
	// (or the guard expires) instead of denying them — the
	// pseudo-transaction strategy of Tsyrklevich & Yee (§8): the
	// attacker's modification is serialized AFTER the victim's use, so
	// the race can no longer be won but no legitimate operation is ever
	// refused.
	Delay
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case Monitor:
		return "monitor"
	case Enforce:
		return "enforce"
	case Delay:
		return "delay"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// DefaultTTL bounds how long an unused invariant stays guarded.
const DefaultTTL = 100 * time.Millisecond

// guardEntry records one guarded invariant.
type guardEntry struct {
	holderPID   int
	establishED sim.Time
	expires     sim.Time
}

// EDGI is the invariant guard. Install it on a simulated FS with
// fs.SetGuard. It is not safe for use across concurrently running
// kernels; create one per round.
type EDGI struct {
	mode Mode
	ttl  time.Duration
	// hookCost is the CPU charged per intercepted operation, modeling
	// the guard's bookkeeping in a real kernel.
	hookCost time.Duration
	// guards maps a path to its active invariant.
	guards map[string]guardEntry
	// Established counts invariants recorded.
	Established int
	// Violations counts operations that would have invalidated a guarded
	// invariant (and were denied in Enforce mode).
	Violations int
	// Denied counts operations actually blocked.
	Denied int
	// Delayed counts operations held back in Delay mode, and
	// DelayedTotal accumulates how long they waited.
	Delayed      int
	DelayedTotal time.Duration
}

// delayPoll is the granularity at which a delayed operation re-checks the
// guard.
const delayPoll = 2 * time.Microsecond

var _ fs.Guard = (*EDGI)(nil)

// DefaultHookCost is the per-operation bookkeeping charge.
const DefaultHookCost = 150 * time.Nanosecond

// New creates a guard in the given mode with the default TTL.
func New(mode Mode) *EDGI {
	return &EDGI{
		mode: mode, ttl: DefaultTTL, hookCost: DefaultHookCost,
		guards: make(map[string]guardEntry),
	}
}

// checkOps establish invariants; mutateOps invalidate name bindings;
// useOps consume (and release) invariants.
func isCheck(op fs.Op) bool {
	switch op {
	case fs.OpStat, fs.OpLstat, fs.OpAccess, fs.OpOpen, fs.OpCreate, fs.OpRename:
		return true
	default:
		return false
	}
}

func isMutate(op fs.Op) bool {
	switch op {
	case fs.OpUnlink, fs.OpSymlink, fs.OpRename, fs.OpLink:
		return true
	default:
		return false
	}
}

func isUse(op fs.Op) bool {
	switch op {
	case fs.OpChown, fs.OpChmod, fs.OpClose:
		return true
	default:
		return false
	}
}

// Before implements fs.Guard.
func (g *EDGI) Before(t *sim.Task, op fs.Op, path, path2 string, cred fs.Cred) error {
	if g.hookCost > 0 {
		t.Compute(g.hookCost)
	}
	if isMutate(op) && !cred.Root() {
		for _, p := range mutatedPaths(op, path, path2) {
			e, ok := g.guards[p]
			if !ok || t.Now() > e.expires {
				continue
			}
			if e.holderPID == t.Process().PID {
				continue
			}
			g.Violations++
			switch g.mode {
			case Enforce:
				g.Denied++
				return &fs.PathError{Op: "edgi:" + op.String(), Path: p, Err: fs.EACCES}
			case Delay:
				g.delayUntilReleased(t, p)
			}
		}
	}
	return nil
}

// delayUntilReleased parks the violating thread until the guard on p is
// released by its holder's use call or expires.
func (g *EDGI) delayUntilReleased(t *sim.Task, p string) {
	start := t.Now()
	g.Delayed++
	for {
		e, ok := g.guards[p]
		if !ok || t.Now() > e.expires {
			break
		}
		t.Sleep(delayPoll)
	}
	g.DelayedTotal += t.Now().Sub(start)
}

// After implements fs.Guard.
func (g *EDGI) After(t *sim.Task, op fs.Op, path, path2 string, cred fs.Cred, err error) {
	if g.hookCost > 0 {
		t.Compute(g.hookCost)
	}
	now := t.Now()
	pid := t.Process().PID
	switch {
	case isCheck(op) && cred.Root() && err == nil:
		// A privileged check establishes (or refreshes) the invariant on
		// the checked name; for rename the invariant moves to the new name.
		target := path
		if op == fs.OpRename {
			target = path2
			delete(g.guards, path)
		}
		g.guards[target] = guardEntry{holderPID: pid, establishED: now, expires: now.Add(g.ttl)}
		g.Established++
	case isUse(op):
		// The use call closes the window: release the holder's guard.
		if e, ok := g.guards[path]; ok && e.holderPID == pid {
			delete(g.guards, path)
		}
	}
}

// mutatedPaths lists the name bindings an operation invalidates.
func mutatedPaths(op fs.Op, path, path2 string) []string {
	if op == fs.OpRename {
		return []string{path, path2}
	}
	return []string{path}
}
