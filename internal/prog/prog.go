// Package prog defines the contract between the experiment harness and
// the simulated programs (victims and attackers): the scenario environment
// they receive and the Program interface they implement.
package prog

import (
	"time"

	"tocttou/internal/fs"
	"tocttou/internal/machine"
	"tocttou/internal/userland"
)

// Env carries a round's scenario parameters into a program.
type Env struct {
	// Target is the contested pathname — vi's wfname, gedit's
	// real_filename. Owned by the attacker's user before the round.
	Target string
	// Backup is where the victim moves/copies the original file.
	Backup string
	// Temp is gedit's scratch file path.
	Temp string
	// Passwd is the privileged file the attacker redirects the victim's
	// chown onto (the round's success criterion).
	Passwd string
	// Dummy is the path attacker v2 exercises to keep its stub pages and
	// branch path warm (paper Fig. 9's dummy file).
	Dummy string
	// FileSize is the document size in bytes.
	FileSize int64
	// OwnerUID and OwnerGID identify the normal user (the attacker).
	OwnerUID int
	OwnerGID int
	// Machine is the calibrated machine profile, used by programs to
	// scale their user-space compute segments.
	Machine machine.Profile
}

// Program is a simulated process body. Run executes on the program's own
// simulated thread; the returned error reports an unexpected failure of
// the program itself (not a lost race).
type Program interface {
	// Name labels the program in traces and reports.
	Name() string
	// Run executes the program to completion.
	Run(c *userland.Libc, env Env) error
}

// Robustness configures how a program reacts to transient syscall failures
// — the injected EINTR/EIO/ENOSPC/EMFILE errors of internal/fault. The
// zero value is the historical give-up-immediately behavior, so existing
// programs are unchanged unless a policy is set explicitly.
type Robustness struct {
	// Retries is how many extra attempts a transiently failed call gets
	// before the failure is surfaced. Zero gives up on the first error.
	Retries int
	// Backoff is the virtual-time wait before the first retry; it doubles
	// on every subsequent one. Zero retries immediately.
	Backoff time.Duration
	// Fallback enables the program's degraded path once retries are
	// exhausted (for vi: save without keeping a backup copy).
	Fallback bool
}

// Transient reports whether err carries one of the errno values the
// robustness policies treat as retryable: the injected-fault set EINTR,
// EIO, ENOSPC, and EMFILE.
func Transient(err error) bool {
	switch fs.ErrnoOf(err) {
	case fs.EINTR, fs.EIO, fs.ENOSPC, fs.EMFILE:
		return true
	}
	return false
}

// Retry runs op under the policy: each transient failure waits the
// doubling backoff in virtual time and tries again, up to Retries extra
// attempts. Non-transient errors surface immediately.
func (r Robustness) Retry(c *userland.Libc, op func() error) error {
	return r.RetryAfter(op(), c, op)
}

// RetryAfter continues the policy after an attempt already failed with
// err: it behaves exactly like Retry whose first op() call returned err.
// Callers use it when the failed first attempt happened elsewhere — e.g.
// a chunk inside the coalesced bulk write (userland.Libc.WriteChunks)
// surfacing an injected fault.
func (r Robustness) RetryAfter(err error, c *userland.Libc, op func() error) error {
	for attempt := 0; attempt < r.Retries && err != nil && Transient(err); attempt++ {
		if d := r.Backoff << uint(attempt); d > 0 {
			c.Task().Sleep(d)
		}
		err = op()
	}
	return err
}
