// Package prog defines the contract between the experiment harness and
// the simulated programs (victims and attackers): the scenario environment
// they receive and the Program interface they implement.
package prog

import (
	"tocttou/internal/machine"
	"tocttou/internal/userland"
)

// Env carries a round's scenario parameters into a program.
type Env struct {
	// Target is the contested pathname — vi's wfname, gedit's
	// real_filename. Owned by the attacker's user before the round.
	Target string
	// Backup is where the victim moves/copies the original file.
	Backup string
	// Temp is gedit's scratch file path.
	Temp string
	// Passwd is the privileged file the attacker redirects the victim's
	// chown onto (the round's success criterion).
	Passwd string
	// Dummy is the path attacker v2 exercises to keep its stub pages and
	// branch path warm (paper Fig. 9's dummy file).
	Dummy string
	// FileSize is the document size in bytes.
	FileSize int64
	// OwnerUID and OwnerGID identify the normal user (the attacker).
	OwnerUID int
	OwnerGID int
	// Machine is the calibrated machine profile, used by programs to
	// scale their user-space compute segments.
	Machine machine.Profile
}

// Program is a simulated process body. Run executes on the program's own
// simulated thread; the returned error reports an unexpected failure of
// the program itself (not a lost race).
type Program interface {
	// Name labels the program in traces and reports.
	Name() string
	// Run executes the program to completion.
	Run(c *userland.Libc, env Env) error
}
