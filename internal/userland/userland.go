// Package userland models the user-space machinery between a program and
// the simulated kernel — most importantly libc's demand-paged syscall
// stubs. In Linux all system calls go through libc, a shared library whose
// pages are mapped into a process lazily: the first call through a stub
// takes a page fault (§6.2.2 of the paper). That single trap is what makes
// the naive gedit attacker (program version 1) lose the race on a
// multi-core, and pre-faulting the stubs (version 2) is the paper's fix.
package userland

import (
	"time"

	"tocttou/internal/fs"
	"tocttou/internal/sim"
)

// Page identifies a libc text page holding syscall stubs. Stubs that the
// paper observes sharing a page (unlink and symlink, §6.2.2) share one here.
type Page uint8

// The stub pages the programs touch.
const (
	PageStat Page = iota + 1
	PageOpenClose
	PageReadWrite
	PageUnlinkSymlink
	PageRename
	PageChmodChown
	PageMisc
)

// Image is the per-process memory image: which libc stub pages have been
// faulted in. Threads of one process share an Image.
type Image struct {
	faulted  uint64 // bit i set = page i resident; pages are a tiny fixed enum
	trapCost time.Duration
}

// NewImage creates a cold image whose first call through each stub page
// costs trapCost. If prefaulted, all pages are already resident — the
// right model for a long-running victim like vi or gedit.
func NewImage(trapCost time.Duration, prefaulted bool) *Image {
	img := &Image{trapCost: trapCost}
	if prefaulted {
		for p := PageStat; p <= PageMisc; p++ {
			img.faulted |= 1 << p
		}
	}
	return img
}

// Reset returns the image to the state NewImage(trapCost, prefaulted)
// would produce, so a round-forking harness can reuse one allocation per
// process across rounds.
func (img *Image) Reset(trapCost time.Duration, prefaulted bool) {
	img.trapCost = trapCost
	img.faulted = 0
	if prefaulted {
		for p := PageStat; p <= PageMisc; p++ {
			img.faulted |= 1 << p
		}
	}
}

// Faulted reports whether a page is resident.
func (img *Image) Faulted(p Page) bool { return img.faulted&(1<<p) != 0 }

// Libc is the syscall interface a simulated program uses. It forwards to
// the simulated file system, charging a page-fault trap on the first use
// of each stub page.
type Libc struct {
	task *sim.Task
	fs   *fs.FS
	img  *Image
}

// Bind attaches a thread to an fs through a process image.
func Bind(task *sim.Task, f *fs.FS, img *Image) *Libc {
	return &Libc{task: task, fs: f, img: img}
}

// Rebind repoints an existing Libc at a new thread, so a round-forking
// harness can reuse one Libc allocation per process across rounds. The
// receiver must not be in use by another live thread.
func (c *Libc) Rebind(task *sim.Task, f *fs.FS, img *Image) *Libc {
	c.task, c.fs, c.img = task, f, img
	return c
}

// Task returns the bound thread handle.
func (c *Libc) Task() *sim.Task { return c.task }

// FS returns the bound file system.
func (c *Libc) FS() *fs.FS { return c.fs }

// Image returns the process memory image, so sibling threads can share it.
func (c *Libc) Image() *Image { return c.img }

// Fsync waits for the file's dirty pages to reach storage — a guaranteed
// I/O suspension, as in the paper's always-suspended victims (rpm, §3.2).
func (c *Libc) Fsync(f *fs.File) error {
	c.fault(PageMisc)
	return f.Sync(c.task)
}

// fault pages in a stub page on first use, charging the trap.
func (c *Libc) fault(p Page) {
	if c.img.faulted&(1<<p) != 0 {
		return
	}
	c.img.faulted |= 1 << p
	c.task.Trace(sim.Event{Kind: sim.EvTrap, Label: "page-fault", Arg: int64(c.img.trapCost)})
	c.task.Compute(c.task.Kernel().JitterDuration(c.img.trapCost))
}

// Stat wraps fs.Stat.
func (c *Libc) Stat(path string) (fs.FileInfo, error) {
	c.fault(PageStat)
	return c.fs.Stat(c.task, path)
}

// Lstat wraps fs.Lstat.
func (c *Libc) Lstat(path string) (fs.FileInfo, error) {
	c.fault(PageStat)
	return c.fs.Lstat(c.task, path)
}

// Open wraps fs.Open.
func (c *Libc) Open(path string, flags fs.OpenFlag, mode fs.Mode) (*fs.File, error) {
	c.fault(PageOpenClose)
	return c.fs.Open(c.task, path, flags, mode)
}

// Close wraps File.Close.
func (c *Libc) Close(f *fs.File) error {
	c.fault(PageOpenClose)
	return f.Close(c.task)
}

// Write wraps File.Write (synthetic content of n bytes).
func (c *Libc) Write(f *fs.File, n int64) error {
	c.fault(PageReadWrite)
	return f.Write(c.task, n)
}

// WriteChunks writes total bytes to f in chunk-sized Write calls, each
// preceded by prep(n) of user compute at machine scale (nil charges
// none) — bit-identical to the classic loop
//
//	for remaining > 0 {
//		n := min(chunk, remaining)
//		c.Compute(prep(n))
//		if err := c.Write(f, n); err != nil { break }
//	}
//
// but coalesced through the file system's bulk path (see
// fs.File.WriteChunks). prep must be a pure function of its argument.
// It returns the bytes written before an error; the failed chunk's prep
// compute is already charged, so callers retry just that chunk (e.g. via
// prog.Robustness.RetryAfter) and call WriteChunks again for the rest.
func (c *Libc) WriteChunks(f *fs.File, total, chunk int64, prep func(n int64) time.Duration) (int64, error) {
	if total <= 0 {
		return 0, nil
	}
	if chunk > 0 && !c.img.Faulted(PageReadWrite) {
		// Cold stub page: run the first chunk through the classic wrapper
		// so the demand-paging trap lands after that chunk's prep, exactly
		// where the stepped loop puts it.
		n := chunk
		if n > total {
			n = total
		}
		if prep != nil {
			c.Compute(prep(n))
		}
		if err := c.Write(f, n); err != nil {
			return 0, err
		}
		done, err := f.WriteChunks(c.task, total-n, chunk, prep)
		return n + done, err
	}
	return f.WriteChunks(c.task, total, chunk, prep)
}

// Read wraps File.Read.
func (c *Libc) Read(f *fs.File, n int64) (int64, error) {
	c.fault(PageReadWrite)
	return f.Read(c.task, n)
}

// Unlink wraps fs.Unlink.
func (c *Libc) Unlink(path string) error {
	c.fault(PageUnlinkSymlink)
	return c.fs.Unlink(c.task, path)
}

// Symlink wraps fs.Symlink. It shares a stub page with Unlink, as the
// paper observes.
func (c *Libc) Symlink(target, linkpath string) error {
	c.fault(PageUnlinkSymlink)
	return c.fs.Symlink(c.task, target, linkpath)
}

// Link wraps fs.Link.
func (c *Libc) Link(oldpath, newpath string) error {
	c.fault(PageMisc)
	return c.fs.Link(c.task, oldpath, newpath)
}

// Rename wraps fs.Rename.
func (c *Libc) Rename(oldpath, newpath string) error {
	c.fault(PageRename)
	return c.fs.Rename(c.task, oldpath, newpath)
}

// Chmod wraps fs.Chmod.
func (c *Libc) Chmod(path string, mode fs.Mode) error {
	c.fault(PageChmodChown)
	return c.fs.Chmod(c.task, path, mode)
}

// Chown wraps fs.Chown.
func (c *Libc) Chown(path string, uid, gid int) error {
	c.fault(PageChmodChown)
	return c.fs.Chown(c.task, path, uid, gid)
}

// Mkdir wraps fs.Mkdir.
func (c *Libc) Mkdir(path string, mode fs.Mode) error {
	c.fault(PageMisc)
	return c.fs.Mkdir(c.task, path, mode)
}

// Fchown wraps File.Chown — the descriptor-based, race-free ownership
// change that fixes the paper's TOCTTOU pairs at the application level.
func (c *Libc) Fchown(f *fs.File, uid, gid int) error {
	c.fault(PageChmodChown)
	return f.Chown(c.task, uid, gid)
}

// Fchmod wraps File.Chmod.
func (c *Libc) Fchmod(f *fs.File, mode fs.Mode) error {
	c.fault(PageChmodChown)
	return f.Chmod(c.task, mode)
}

// Access wraps fs.Access, the classic TOCTTOU check call.
func (c *Libc) Access(path string, want fs.Mode) error {
	c.fault(PageStat)
	return c.fs.Access(c.task, path, want)
}

// ReadDir wraps fs.ReadDir.
func (c *Libc) ReadDir(path string) ([]string, error) {
	c.fault(PageMisc)
	return c.fs.ReadDir(c.task, path)
}

// Readlink wraps fs.Readlink.
func (c *Libc) Readlink(path string) (string, error) {
	c.fault(PageMisc)
	return c.fs.Readlink(c.task, path)
}

// Compute burns user CPU time (with machine jitter).
func (c *Libc) Compute(d time.Duration) {
	c.task.Compute(c.task.Kernel().JitterDuration(d))
}
