package userland

import (
	"testing"
	"time"

	"tocttou/internal/fs"
	"tocttou/internal/sim"
)

// run executes fn as a single thread over a fresh kernel/FS and returns
// the collected trace.
func run(t *testing.T, prefaulted bool, fn func(c *Libc)) []sim.Event {
	t.Helper()
	tr := &sim.SliceTracer{}
	k := sim.New(sim.Config{CPUs: 1, Quantum: 50 * time.Millisecond, Seed: 1, Tracer: tr})
	f := fs.New(fs.Config{Latency: fs.DefaultProfile()})
	f.MustMkdirAll("/d", 0o777, 0, 0)
	f.MustWriteFile("/d/f", 128, 0o644, 0, 0)
	p := k.NewProcess("p", 0, 0)
	img := NewImage(6*time.Microsecond, prefaulted)
	k.Spawn(p, "main", func(task *sim.Task) {
		fn(Bind(task, f, img))
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	return tr.Events
}

func countTraps(events []sim.Event) int {
	n := 0
	for _, e := range events {
		if e.Kind == sim.EvTrap {
			n++
		}
	}
	return n
}

func TestColdImageTrapsOncePerPage(t *testing.T) {
	events := run(t, false, func(c *Libc) {
		_, _ = c.Stat("/d/f")
		_, _ = c.Stat("/d/f") // same page: no second trap
		_ = c.Unlink("/d/f")
		_ = c.Symlink("/etc/x", "/d/f") // shares the unlink page
	})
	if got := countTraps(events); got != 2 {
		t.Errorf("traps = %d, want 2 (stat page + unlink/symlink page)", got)
	}
}

func TestPrefaultedImageNeverTraps(t *testing.T) {
	events := run(t, true, func(c *Libc) {
		_, _ = c.Stat("/d/f")
		_ = c.Unlink("/d/f")
		_ = c.Symlink("/etc/x", "/d/f")
		_ = c.Rename("/d/f", "/d/g")
		_ = c.Chmod("/d/g", 0o600)
	})
	if got := countTraps(events); got != 0 {
		t.Errorf("traps = %d, want 0 for prefaulted image", got)
	}
}

func TestTrapChargesTime(t *testing.T) {
	var coldDur, warmDur sim.Time
	run(t, false, func(c *Libc) {
		start := c.Task().Now()
		_, _ = c.Stat("/d/f")
		coldDur = sim.Time(c.Task().Now() - start)
	})
	run(t, true, func(c *Libc) {
		start := c.Task().Now()
		_, _ = c.Stat("/d/f")
		warmDur = sim.Time(c.Task().Now() - start)
	})
	diff := time.Duration(coldDur - warmDur)
	if diff < 4*time.Microsecond || diff > 9*time.Microsecond {
		t.Errorf("cold-warm difference = %v, want ≈6µs trap", diff)
	}
}

func TestUnlinkSymlinkSharePage(t *testing.T) {
	events := run(t, false, func(c *Libc) {
		_ = c.Symlink("/etc/x", "/d/link") // faults the shared page
		_ = c.Unlink("/d/link")            // must not trap again
	})
	if got := countTraps(events); got != 1 {
		t.Errorf("traps = %d, want 1 (shared stub page, §6.2.2)", got)
	}
}

func TestImageSharedAcrossThreads(t *testing.T) {
	// Two threads of one process share the faulted-page table, like the
	// pipelined attacker's symlinker warming pages for the main thread.
	tr := &sim.SliceTracer{}
	k := sim.New(sim.Config{CPUs: 2, Quantum: 50 * time.Millisecond, Seed: 1, Tracer: tr})
	f := fs.New(fs.Config{Latency: fs.DefaultProfile()})
	f.MustMkdirAll("/d", 0o777, 0, 0)
	p := k.NewProcess("p", 0, 0)
	img := NewImage(6*time.Microsecond, false)
	k.Spawn(p, "warmer", func(task *sim.Task) {
		c := Bind(task, f, img)
		_ = c.Symlink("/x", "/d/warm")
	})
	k.Spawn(p, "worker", func(task *sim.Task) {
		task.Compute(time.Millisecond) // run after the warmer
		c := Bind(task, f, img)
		_ = c.Unlink("/d/warm")
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got := countTraps(tr.Events); got != 1 {
		t.Errorf("traps = %d, want 1 (image shared within process)", got)
	}
}

func TestLibcPassThroughSemantics(t *testing.T) {
	run(t, true, func(c *Libc) {
		info, err := c.Stat("/d/f")
		if err != nil || info.Size != 128 {
			t.Errorf("stat = %+v, %v", info, err)
		}
		fh, err := c.Open("/d/new", fs.OWrite|fs.OCreate, 0o644)
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		if err := c.Write(fh, 64); err != nil {
			t.Errorf("write: %v", err)
		}
		if err := c.Fsync(fh); err != nil {
			t.Errorf("fsync: %v", err)
		}
		if err := c.Close(fh); err != nil {
			t.Errorf("close: %v", err)
		}
		if err := c.Mkdir("/d/sub", 0o755); err != nil {
			t.Errorf("mkdir: %v", err)
		}
		if err := c.Link("/d/new", "/d/hard"); err != nil {
			t.Errorf("link: %v", err)
		}
		if err := c.Symlink("/d/new", "/d/soft"); err != nil {
			t.Errorf("symlink: %v", err)
		}
		target, err := c.Readlink("/d/soft")
		if err != nil || target != "/d/new" {
			t.Errorf("readlink = %q, %v", target, err)
		}
		if err := c.Chown("/d/new", 5, 5); err != nil {
			t.Errorf("chown: %v", err)
		}
		rf, err := c.Open("/d/new", fs.ORead, 0)
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		n, err := c.Read(rf, 32)
		if err != nil || n != 32 {
			t.Errorf("read = %d, %v", n, err)
		}
		_ = c.Close(rf)
		li, err := c.Lstat("/d/soft")
		if err != nil || li.Type != fs.TypeSymlink {
			t.Errorf("lstat = %+v, %v", li, err)
		}
	})
}

func TestFsyncBlocksOnIO(t *testing.T) {
	events := run(t, true, func(c *Libc) {
		fh, err := c.Open("/d/f", fs.OWrite, 0)
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		if err := c.Fsync(fh); err != nil {
			t.Errorf("fsync: %v", err)
		}
	})
	sawIO := false
	for _, e := range events {
		if e.Kind == sim.EvIOBlock {
			sawIO = true
		}
	}
	if !sawIO {
		t.Error("fsync must block on I/O")
	}
}
