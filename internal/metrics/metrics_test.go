package metrics

import (
	"math"
	"testing"
	"time"

	"tocttou/internal/fault"
	"tocttou/internal/sim"
	"tocttou/internal/trace"
)

func TestHistBucketing(t *testing.T) {
	var h Hist
	cases := []struct {
		us     float64
		bucket int // -2 = Neg, -1 = Sub, else Buckets index
	}{
		{-3.5, -2},
		{-0.001, -2},
		{0, -1},
		{0.999, -1},
		{1, 0},
		{1.999, 0},
		{2, 1},
		{3.99, 1},
		{4, 2},
		{1024, 10},
		{math.Ldexp(1, HistBuckets-1), HistBuckets - 1},
		{math.Ldexp(1, HistBuckets+4), HistBuckets - 1}, // overflow clamps to top
	}
	for _, c := range cases {
		before := h
		h.Add(c.us)
		switch c.bucket {
		case -2:
			if h.Neg != before.Neg+1 {
				t.Errorf("Add(%v): Neg not incremented", c.us)
			}
		case -1:
			if h.Sub != before.Sub+1 {
				t.Errorf("Add(%v): Sub not incremented", c.us)
			}
		default:
			if h.Buckets[c.bucket] != before.Buckets[c.bucket]+1 {
				t.Errorf("Add(%v): bucket %d not incremented (hist %+v)", c.us, c.bucket, h)
			}
		}
	}
	if h.N() != int64(len(cases)) {
		t.Errorf("N = %d, want %d", h.N(), len(cases))
	}
}

func TestHistBucketEdges(t *testing.T) {
	for i := 0; i < HistBuckets; i++ {
		if BucketHi(i) != 2*BucketLo(i) {
			t.Errorf("bucket %d edges [%v, %v) are not an octave", i, BucketLo(i), BucketHi(i))
		}
	}
	if BucketLo(0) != 1 {
		t.Errorf("bucket 0 starts at %v, want 1", BucketLo(0))
	}
}

func TestHistMerge(t *testing.T) {
	var a, b Hist
	a.Add(-1)
	a.Add(0.5)
	a.Add(8)
	b.Add(8)
	b.Add(100)
	a.Merge(b)
	if a.N() != 5 || a.Neg != 1 || a.Sub != 1 || a.Buckets[3] != 2 || a.Buckets[6] != 1 {
		t.Errorf("merged hist wrong: %+v", a)
	}
}

func TestPointObserveGating(t *testing.T) {
	ks := sim.KernelStats{Dispatches: 3, Ticks: 10, CPUs: 2}
	var p Point

	// Untraced round: counters fold, latencies don't.
	p.Observe(ks, sim.Time(1000), trace.LDResult{}, 0, false, fault.Counters{})
	if p.Rounds != 1 || p.Dispatches.Mean() != 3 {
		t.Fatalf("counters not folded: %+v", p)
	}
	if p.Traced() || p.WindowHist.N() != 0 || p.LHist.N() != 0 {
		t.Fatalf("untraced observe leaked latencies: %+v", p)
	}

	// Window without a completed race: window folds, L/D don't.
	p.Observe(ks, sim.Time(1000), trace.LDResult{WindowFound: true}, 5*time.Microsecond, true, fault.Counters{})
	if p.WindowHist.N() != 1 || p.DHist.N() != 0 {
		t.Fatalf("window gating wrong: %+v", p)
	}

	// Full race: all three latency channels fold.
	ld := trace.LDResult{
		Detected: true, WindowFound: true, T3: 100,
		D: 30 * time.Microsecond, L: -2 * time.Microsecond,
	}
	p.Observe(ks, sim.Time(1000), ld, 5*time.Microsecond, true, fault.Counters{})
	if p.DHist.N() != 1 || p.LHist.N() != 1 || p.LHist.Neg != 1 {
		t.Fatalf("race latencies not folded (negative L must land in Neg): %+v", p)
	}
	if !p.Traced() {
		t.Error("point with latencies must report Traced")
	}
}

func TestPointComparable(t *testing.T) {
	mk := func() Point {
		var p Point
		p.Observe(sim.KernelStats{Dispatches: 1, CPUs: 1}, 100, trace.LDResult{}, 0, false, fault.Counters{})
		return p
	}
	if mk() != mk() {
		t.Error("identical observation sequences must compare equal under ==")
	}
}
