// Package metrics aggregates the simulator's always-on observability data
// across the rounds of a sweep point: the kernel's KernelStats counter
// block (scheduling, synchronization, interrupts, CPU time) and the
// trace-derived latencies of the paper's §3.4 — vulnerability-window
// length, detection latency D, and laxity L.
//
// Everything here is deterministic by construction. Scalar figures fold
// with Welford running summaries and latencies additionally land in
// fixed-bucket log₂ histograms (plain arrays, no allocation after the
// Point itself exists). Folding order matters for the float summaries, so
// callers must observe rounds in ascending round-index order — exactly the
// commit order the sweep engine's reorder buffer guarantees — which makes
// a Point bit-identical regardless of GOMAXPROCS or pool interleaving.
package metrics

import (
	"math/bits"
	"time"

	"tocttou/internal/fault"
	"tocttou/internal/sim"
	"tocttou/internal/stats"
	"tocttou/internal/trace"
)

// HistBuckets is the bucket count of the log₂ latency histograms. Bucket i
// covers [2^i, 2^(i+1)) microseconds, so 32 buckets span 1µs to ~71
// virtual minutes — beyond the simulator's time budget.
const HistBuckets = 32

// Hist is a fixed-bucket log₂ histogram over microsecond latencies. The
// zero value is empty and ready to use; it is a comparable plain value
// (fixed arrays, no pointers) so aggregates containing it can be compared
// with == in determinism tests.
type Hist struct {
	// Neg counts negative observations (a failed race has laxity L < 0:
	// the victim reached its use call before the attack landed).
	Neg int64
	// Sub counts sub-microsecond observations in [0, 1).
	Sub int64
	// Buckets[i] counts observations in [2^i, 2^(i+1)) µs; the top bucket
	// also absorbs anything beyond the histogram's range.
	Buckets [HistBuckets]int64
}

// Add records one observation in microseconds.
func (h *Hist) Add(us float64) {
	switch {
	case us < 0:
		h.Neg++
	case us < 1:
		h.Sub++
	default:
		b := bits.Len64(uint64(us)) - 1
		if b >= HistBuckets {
			b = HistBuckets - 1
		}
		h.Buckets[b]++
	}
}

// N returns the number of observations recorded.
func (h *Hist) N() int64 {
	n := h.Neg + h.Sub
	for _, c := range h.Buckets {
		n += c
	}
	return n
}

// Merge folds other's counts into h (for pooling per-point histograms
// into one display histogram; counts are order-insensitive).
func (h *Hist) Merge(other Hist) {
	h.Neg += other.Neg
	h.Sub += other.Sub
	for i := range h.Buckets {
		h.Buckets[i] += other.Buckets[i]
	}
}

// BucketLo returns the inclusive lower edge of bucket i in µs.
func BucketLo(i int) float64 { return float64(int64(1) << i) }

// BucketHi returns the exclusive upper edge of bucket i in µs.
func BucketHi(i int) float64 { return float64(int64(1) << (i + 1)) }

// Point is the metrics summary of one sweep point (one campaign): Welford
// mean/variance summaries of the per-round kernel counters, and summaries
// plus log₂ histograms of the per-round derived latencies. The latency
// section only populates for traced scenarios (L, D, and the window are
// measured from the event log); the kernel counters are always on.
//
// Point is a comparable value: two campaigns folded in the same order over
// identical rounds produce Points equal under ==.
type Point struct {
	// Rounds counts observed rounds.
	Rounds int64

	// Per-round scheduling and interrupt activity.
	Dispatches  stats.Summary // completed CPU dispatches per round
	Preemptions stats.Summary // preemptions per round
	Traps       stats.Summary // page-fault traps per round
	Ticks       stats.Summary // timer interrupts per round
	NoiseBursts stats.Summary // softirq/daemon bursts per round

	// Per-round synchronization activity.
	SemBlocks   stats.Summary // contended semaphore acquisitions per round
	SemAcquires stats.Summary // total semaphore acquisitions per round
	SemWaitUs   stats.Summary // total semaphore wait per round (µs)

	// Per-round CPU-time accounting (µs of virtual time).
	TickUs  stats.Summary // interrupt handling cost per round
	NoiseUs stats.Summary // softirq/daemon occupancy per round
	BusyUs  stats.Summary // user compute executed per round, all CPUs
	IdleUs  stats.Summary // non-compute CPU time per round, all CPUs

	// Derived race latencies (traced rounds only).
	WindowUs stats.Summary // vulnerability-window length (µs)
	DUs      stats.Summary // detection latency D (µs)
	LUs      stats.Summary // laxity L (µs); can be negative on failure

	WindowHist Hist
	DHist      Hist
	LHist      Hist

	// Per-round injected-fault activity (zero unless the scenario armed a
	// fault plan; see internal/fault).
	FaultFSErrors      stats.Summary // injected fs errno failures per round
	FaultSemInterrupts stats.Summary // delivered EINTR interruptions per round
	FaultKills         stats.Summary // injected process kills per round
	FaultRestarts      stats.Summary // victim restarts after a kill per round
}

// Observe folds one completed round: its kernel counter snapshot, its end
// time (for idle derivation), its trace-derived measurements, and its
// injected-fault tally. Rounds must be observed in ascending round-index
// order for bit-reproducible summaries.
func (p *Point) Observe(ks sim.KernelStats, end sim.Time, ld trace.LDResult, window time.Duration, windowOK bool, faults fault.Counters) {
	p.Rounds++
	p.Dispatches.Add(float64(ks.Dispatches))
	p.Preemptions.Add(float64(ks.Preemptions))
	p.Traps.Add(float64(ks.Traps))
	p.Ticks.Add(float64(ks.Ticks))
	p.NoiseBursts.Add(float64(ks.NoiseBursts))
	p.SemBlocks.Add(float64(ks.SemBlocks))
	p.SemAcquires.Add(float64(ks.SemAcquires))
	p.SemWaitUs.Add(float64(ks.SemWaitNs) / 1e3)
	p.TickUs.Add(float64(ks.TickNs) / 1e3)
	p.NoiseUs.Add(float64(ks.NoiseNs) / 1e3)
	p.BusyUs.Add(float64(ks.BusyTotalNs()) / 1e3)
	p.IdleUs.Add(float64(ks.IdleNs(end)) / 1e3)

	if windowOK {
		us := float64(window) / 1e3
		p.WindowUs.Add(us)
		p.WindowHist.Add(us)
	}
	if ld.Detected && ld.WindowFound && ld.T3 > 0 {
		p.DUs.Add(ld.Dmicros())
		p.DHist.Add(ld.Dmicros())
		p.LUs.Add(ld.Lmicros())
		p.LHist.Add(ld.Lmicros())
	}

	p.FaultFSErrors.Add(float64(faults.FSErrors))
	p.FaultSemInterrupts.Add(float64(faults.SemInterrupts))
	p.FaultKills.Add(float64(faults.Kills))
	p.FaultRestarts.Add(float64(faults.Restarts))
}

// Faulted reports whether any round delivered an injected fault. The
// counters are non-negative, so a positive max means at least one delivery.
func (p *Point) Faulted() bool {
	return p.FaultFSErrors.Max() > 0 || p.FaultSemInterrupts.Max() > 0 ||
		p.FaultKills.Max() > 0 || p.FaultRestarts.Max() > 0
}

// Traced reports whether any round contributed derived latencies (i.e.
// the scenario ran with tracing enabled and a window was observed).
func (p *Point) Traced() bool { return p.WindowUs.N() > 0 || p.DUs.N() > 0 }
