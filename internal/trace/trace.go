// Package trace analyzes simulation event logs the way the paper's
// "detailed event analysis" sections do: it locates the victim's
// vulnerability window, measures the attacker's detection latency D and
// the laxity L of §3.4, and builds per-thread timelines like the paper's
// Figures 8 and 10.
package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"time"

	"tocttou/internal/sim"
)

// Log wraps an event slice with query helpers. Events must be
// time-ordered, which kernel traces always are.
type Log struct {
	Events []sim.Event
}

// New wraps events in a Log.
func New(events []sim.Event) *Log { return &Log{Events: events} }

// FirstBind returns the time of the first binding of path to an inode
// owned by uid — for the attacks, the instant the vulnerability window
// opens (vi: open creates the root-owned file; gedit: rename's dentry swap
// commits).
func (l *Log) FirstBind(path string, uid int) (sim.Time, bool) {
	for _, e := range l.Events {
		if e.Kind == sim.EvNameBind && e.Path == path && e.Arg == int64(uid) {
			return e.T, true
		}
	}
	return 0, false
}

// FirstSyscallEnter returns the first entry of the named syscall by pid at
// or after from. Empty path matches any path.
func (l *Log) FirstSyscallEnter(pid int32, name, path string, from sim.Time) (sim.Time, bool) {
	for _, e := range l.Events {
		if e.T < from || e.Kind != sim.EvSyscallEnter || e.PID != pid || e.Label != name {
			continue
		}
		if path != "" && e.Path != path {
			continue
		}
		return e.T, true
	}
	return 0, false
}

// FirstSyscallExit returns the first exit of the named syscall by pid at
// or after from. Empty path matches any path.
func (l *Log) FirstSyscallExit(pid int32, name, path string, from sim.Time) (sim.Time, bool) {
	for _, e := range l.Events {
		if e.T < from || e.Kind != sim.EvSyscallExit || e.PID != pid || e.Label != name {
			continue
		}
		if path != "" && e.Path != path {
			continue
		}
		return e.T, true
	}
	return 0, false
}

// SyscallSpan returns the [enter, exit] interval of the first occurrence
// of the named syscall by pid on path at or after from.
func (l *Log) SyscallSpan(pid int32, name, path string, from sim.Time) (enter, exit sim.Time, ok bool) {
	enter, ok = l.FirstSyscallEnter(pid, name, path, from)
	if !ok {
		return 0, 0, false
	}
	exit, ok = l.FirstSyscallExit(pid, name, path, enter)
	if !ok {
		return 0, 0, false
	}
	return enter, exit, true
}

// LastSyscallEnterBefore returns the last entry of the named syscall by
// pid strictly before the limit.
func (l *Log) LastSyscallEnterBefore(pid int32, name, path string, limit sim.Time) (sim.Time, bool) {
	var found bool
	var at sim.Time
	for _, e := range l.Events {
		if e.T >= limit {
			break
		}
		if e.Kind != sim.EvSyscallEnter || e.PID != pid || e.Label != name {
			continue
		}
		if path != "" && e.Path != path {
			continue
		}
		at, found = e.T, true
	}
	return at, found
}

// LDParams identifies the roles in a round for L/D measurement.
type LDParams struct {
	// VictimPID and AttackerPID separate the two processes' events.
	VictimPID   int32
	AttackerPID int32
	// Target is the contested pathname (vi's wfname, gedit's
	// real_filename).
	Target string
	// UseSyscall is the victim call that must lose the race: "chown" for
	// vi's <open, chown> pair, "chmod" for gedit's <rename, chown> pair
	// where the semaphore race is against chmod (§6.1).
	UseSyscall string
}

// LDResult carries the paper's §3.4/§6.1 quantities for one round.
type LDResult struct {
	// T1 is the earliest start of a successful detection: the instant the
	// target becomes bound to a root-owned inode. As in the paper's
	// Table 2, this estimator is conservative — a stat that starts
	// earlier and blocks on the directory semaphore can still detect.
	T1 sim.Time
	// T3 is the victim's entry into the use syscall.
	T3 sim.Time
	// StatEnter and UnlinkEnter bracket the attacker's successful
	// detection; D = UnlinkEnter - StatEnter per §6.1.
	StatEnter   sim.Time
	UnlinkEnter sim.Time
	// D is the detection interval, L = (T3 - D) - T1 the laxity.
	D time.Duration
	L time.Duration
	// Detected reports whether the attacker launched its attack at all.
	Detected bool
	// WindowFound reports whether the vulnerability window opened.
	WindowFound bool
}

// Lmicros returns L in microseconds (the paper's unit).
func (r LDResult) Lmicros() float64 { return float64(r.L) / 1e3 }

// Dmicros returns D in microseconds.
func (r LDResult) Dmicros() float64 { return float64(r.D) / 1e3 }

// MeasureLD extracts L and D from a round's trace.
func MeasureLD(l *Log, p LDParams) LDResult {
	var r LDResult
	r.T1, r.WindowFound = l.FirstBind(p.Target, 0)
	if !r.WindowFound {
		return r
	}
	r.T3, _ = l.FirstSyscallEnter(p.VictimPID, p.UseSyscall, "", r.T1)
	r.UnlinkEnter, r.Detected = l.FirstSyscallEnter(p.AttackerPID, "unlink", p.Target, 0)
	if !r.Detected {
		return r
	}
	statEnter, ok := l.LastSyscallEnterBefore(p.AttackerPID, "stat", p.Target, r.UnlinkEnter)
	if !ok {
		r.Detected = false
		return r
	}
	r.StatEnter = statEnter
	r.D = r.UnlinkEnter.Sub(r.StatEnter)
	if r.T3 > 0 {
		r.L = r.T3.Sub(r.T1) - r.D
	}
	return r
}

// WindowDuration returns the vulnerability window length (T1 to the use
// syscall entry), if both were observed.
func (l *Log) WindowDuration(victimPID int32, target, useSyscall string) (time.Duration, bool) {
	t1, ok := l.FirstBind(target, 0)
	if !ok {
		return 0, false
	}
	t3, ok := l.FirstSyscallEnter(victimPID, useSyscall, "", t1)
	if !ok {
		return 0, false
	}
	return t3.Sub(t1), true
}

// SuspendedInWindow reports whether the process lost its CPU — was
// preempted or blocked on I/O, a timer, or a semaphore — between from and
// to. This measures the P(victim suspended) term of the paper's
// Equation 1 directly from a round's trace.
func (l *Log) SuspendedInWindow(pid int32, from, to sim.Time) bool {
	for _, e := range l.Events {
		if e.T < from {
			continue
		}
		if e.T > to {
			break
		}
		if e.PID != pid {
			continue
		}
		switch e.Kind {
		case sim.EvPreempt, sim.EvBlock, sim.EvIOBlock, sim.EvSemBlock:
			return true
		}
	}
	return false
}

// WriteCSV dumps the events as CSV for offline analysis.
func WriteCSV(w io.Writer, events []sim.Event) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"t_us", "kind", "cpu", "pid", "tid", "label", "path", "arg"}); err != nil {
		return err
	}
	for _, e := range events {
		rec := []string{
			fmt.Sprintf("%.3f", e.T.Micros()),
			e.Kind.String(),
			strconv.Itoa(int(e.CPU)),
			strconv.Itoa(int(e.PID)),
			strconv.Itoa(int(e.TID)),
			e.Label,
			e.Path,
			strconv.FormatInt(e.Arg, 10),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
