// Package trace analyzes simulation event logs the way the paper's
// "detailed event analysis" sections do: it locates the victim's
// vulnerability window, measures the attacker's detection latency D and
// the laxity L of §3.4, and builds per-thread timelines like the paper's
// Figures 8 and 10.
package trace

import (
	"bufio"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"

	"tocttou/internal/sim"
)

// Log wraps an event slice with query helpers. Events must be
// time-ordered, which kernel traces always are — the queries exploit the
// ordering with binary search on their time bounds, so building a
// timeline or summary out of many queries costs O(q·log n + answers)
// instead of rescanning the whole log from event 0 per call.
type Log struct {
	Events []sim.Event
}

// New wraps events in a Log.
func New(events []sim.Event) *Log { return &Log{Events: events} }

// searchFrom returns the index of the first event at or after from.
func (l *Log) searchFrom(from sim.Time) int {
	if from <= 0 {
		return 0
	}
	return sort.Search(len(l.Events), func(i int) bool { return l.Events[i].T >= from })
}

// FirstBind returns the time of the first binding of path to an inode
// owned by uid — for the attacks, the instant the vulnerability window
// opens (vi: open creates the root-owned file; gedit: rename's dentry swap
// commits).
func (l *Log) FirstBind(path string, uid int) (sim.Time, bool) {
	for _, e := range l.Events {
		if e.Kind == sim.EvNameBind && e.Path == path && e.Arg == int64(uid) {
			return e.T, true
		}
	}
	return 0, false
}

// FirstSyscallEnter returns the first entry of the named syscall by pid at
// or after from. Empty path matches any path.
func (l *Log) FirstSyscallEnter(pid int32, name, path string, from sim.Time) (sim.Time, bool) {
	return l.firstSyscall(sim.EvSyscallEnter, pid, name, path, from)
}

// firstSyscall scans forward from the binary-searched from bound for the
// first matching syscall event of the given kind.
func (l *Log) firstSyscall(kind sim.EventKind, pid int32, name, path string, from sim.Time) (sim.Time, bool) {
	for i := l.searchFrom(from); i < len(l.Events); i++ {
		e := &l.Events[i]
		if e.Kind != kind || e.PID != pid || e.Label != name {
			continue
		}
		if path != "" && e.Path != path {
			continue
		}
		return e.T, true
	}
	return 0, false
}

// FirstSyscallExit returns the first exit of the named syscall by pid at
// or after from. Empty path matches any path.
func (l *Log) FirstSyscallExit(pid int32, name, path string, from sim.Time) (sim.Time, bool) {
	return l.firstSyscall(sim.EvSyscallExit, pid, name, path, from)
}

// SyscallSpan returns the [enter, exit] interval of the first occurrence
// of the named syscall by pid on path at or after from.
func (l *Log) SyscallSpan(pid int32, name, path string, from sim.Time) (enter, exit sim.Time, ok bool) {
	enter, ok = l.FirstSyscallEnter(pid, name, path, from)
	if !ok {
		return 0, 0, false
	}
	exit, ok = l.FirstSyscallExit(pid, name, path, enter)
	if !ok {
		return 0, 0, false
	}
	return enter, exit, true
}

// LastSyscallEnterBefore returns the last entry of the named syscall by
// pid strictly before the limit. It scans backward from the limit's
// binary-searched position, so a match near the limit — the common case
// when bracketing a detection — is found without visiting the log's head.
func (l *Log) LastSyscallEnterBefore(pid int32, name, path string, limit sim.Time) (sim.Time, bool) {
	for i := l.searchFrom(limit) - 1; i >= 0; i-- {
		e := &l.Events[i]
		if e.Kind != sim.EvSyscallEnter || e.PID != pid || e.Label != name {
			continue
		}
		if path != "" && e.Path != path {
			continue
		}
		return e.T, true
	}
	return 0, false
}

// LDParams identifies the roles in a round for L/D measurement.
type LDParams struct {
	// VictimPID and AttackerPID separate the two processes' events.
	VictimPID   int32
	AttackerPID int32
	// Target is the contested pathname (vi's wfname, gedit's
	// real_filename).
	Target string
	// UseSyscall is the victim call that must lose the race: "chown" for
	// vi's <open, chown> pair, "chmod" for gedit's <rename, chown> pair
	// where the semaphore race is against chmod (§6.1).
	UseSyscall string
}

// LDResult carries the paper's §3.4/§6.1 quantities for one round.
type LDResult struct {
	// T1 is the earliest start of a successful detection: the instant the
	// target becomes bound to a root-owned inode. As in the paper's
	// Table 2, this estimator is conservative — a stat that starts
	// earlier and blocks on the directory semaphore can still detect.
	T1 sim.Time
	// T3 is the victim's entry into the use syscall.
	T3 sim.Time
	// StatEnter and UnlinkEnter bracket the attacker's successful
	// detection; D = UnlinkEnter - StatEnter per §6.1.
	StatEnter   sim.Time
	UnlinkEnter sim.Time
	// D is the detection interval, L = (T3 - D) - T1 the laxity.
	D time.Duration
	L time.Duration
	// Detected reports whether the attacker launched its attack at all.
	Detected bool
	// WindowFound reports whether the vulnerability window opened.
	WindowFound bool
}

// Lmicros returns L in microseconds (the paper's unit).
func (r LDResult) Lmicros() float64 { return float64(r.L) / 1e3 }

// Dmicros returns D in microseconds.
func (r LDResult) Dmicros() float64 { return float64(r.D) / 1e3 }

// MeasureLD extracts L and D from a round's trace.
func MeasureLD(l *Log, p LDParams) LDResult {
	var r LDResult
	r.T1, r.WindowFound = l.FirstBind(p.Target, 0)
	if !r.WindowFound {
		return r
	}
	r.T3, _ = l.FirstSyscallEnter(p.VictimPID, p.UseSyscall, "", r.T1)
	r.UnlinkEnter, r.Detected = l.FirstSyscallEnter(p.AttackerPID, "unlink", p.Target, 0)
	if !r.Detected {
		return r
	}
	statEnter, ok := l.LastSyscallEnterBefore(p.AttackerPID, "stat", p.Target, r.UnlinkEnter)
	if !ok {
		r.Detected = false
		return r
	}
	r.StatEnter = statEnter
	r.D = r.UnlinkEnter.Sub(r.StatEnter)
	if r.T3 > 0 {
		r.L = r.T3.Sub(r.T1) - r.D
	}
	return r
}

// WindowDuration returns the vulnerability window length (T1 to the use
// syscall entry), if both were observed.
func (l *Log) WindowDuration(victimPID int32, target, useSyscall string) (time.Duration, bool) {
	t1, ok := l.FirstBind(target, 0)
	if !ok {
		return 0, false
	}
	t3, ok := l.FirstSyscallEnter(victimPID, useSyscall, "", t1)
	if !ok {
		return 0, false
	}
	return t3.Sub(t1), true
}

// SuspendedInWindow reports whether the process lost its CPU — was
// preempted or blocked on I/O, a timer, or a semaphore — between from and
// to. This measures the P(victim suspended) term of the paper's
// Equation 1 directly from a round's trace.
func (l *Log) SuspendedInWindow(pid int32, from, to sim.Time) bool {
	for i := l.searchFrom(from); i < len(l.Events); i++ {
		e := &l.Events[i]
		if e.T > to {
			break
		}
		if e.PID != pid {
			continue
		}
		switch e.Kind {
		case sim.EvPreempt, sim.EvBlock, sim.EvIOBlock, sim.EvSemBlock:
			return true
		}
	}
	return false
}

// WriteCSV dumps the events as CSV for offline analysis. One scratch
// buffer is reused across events and every field is appended with
// strconv, so exporting a million-event trace costs a handful of
// allocations instead of ten per event.
func WriteCSV(w io.Writer, events []sim.Event) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.WriteString("t_us,kind,cpu,pid,tid,label,path,arg\n"); err != nil {
		return err
	}
	buf := make([]byte, 0, 128)
	for i := range events {
		e := &events[i]
		buf = strconv.AppendFloat(buf[:0], e.T.Micros(), 'f', 3, 64)
		buf = append(buf, ',')
		buf = appendCSVField(buf, e.Kind.String())
		buf = append(buf, ',')
		buf = strconv.AppendInt(buf, int64(e.CPU), 10)
		buf = append(buf, ',')
		buf = strconv.AppendInt(buf, int64(e.PID), 10)
		buf = append(buf, ',')
		buf = strconv.AppendInt(buf, int64(e.TID), 10)
		buf = append(buf, ',')
		buf = appendCSVField(buf, e.Label)
		buf = append(buf, ',')
		buf = appendCSVField(buf, e.Path)
		buf = append(buf, ',')
		buf = strconv.AppendInt(buf, e.Arg, 10)
		buf = append(buf, '\n')
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// appendCSVField appends s, quoted per RFC 4180 (matching encoding/csv)
// only when the content requires it.
func appendCSVField(buf []byte, s string) []byte {
	if !csvNeedsQuotes(s) {
		return append(buf, s...)
	}
	buf = append(buf, '"')
	for i := 0; i < len(s); i++ {
		if s[i] == '"' {
			buf = append(buf, '"', '"')
		} else {
			buf = append(buf, s[i])
		}
	}
	return append(buf, '"')
}

func csvNeedsQuotes(s string) bool {
	if s == "" {
		return false
	}
	if s[0] == ' ' || s[0] == '\t' {
		return true
	}
	return strings.ContainsAny(s, ",\"\r\n")
}
