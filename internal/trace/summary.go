package trace

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"tocttou/internal/sim"
)

// ThreadSummary aggregates how one thread spent its virtual time.
type ThreadSummary struct {
	PID, TID int32
	// Compute is executed CPU time (from EvCompute records).
	Compute time.Duration
	// BlockedSem is time spent waiting on semaphores.
	BlockedSem time.Duration
	// BlockedIO is time spent waiting on storage.
	BlockedIO time.Duration
	// Syscalls counts syscall entries, Preemptions quantum losses, and
	// Traps page faults.
	Syscalls    int
	Preemptions int
	Traps       int
}

// Summarize aggregates per-thread activity over the whole log. Semaphore
// wait time pairs EvSemBlock with the following EvSemAcquire of the same
// thread and label; I/O wait uses EvIOBlock's recorded duration.
func Summarize(l *Log) []ThreadSummary {
	type key struct{ pid, tid int32 }
	acc := map[key]*ThreadSummary{}
	blockStart := map[key]map[string]sim.Time{}

	get := func(e sim.Event) *ThreadSummary {
		k := key{e.PID, e.TID}
		s, ok := acc[k]
		if !ok {
			s = &ThreadSummary{PID: e.PID, TID: e.TID}
			acc[k] = s
			blockStart[k] = map[string]sim.Time{}
		}
		return s
	}

	for _, e := range l.Events {
		switch e.Kind {
		case sim.EvCompute:
			get(e).Compute += time.Duration(e.Arg)
		case sim.EvSemBlock:
			get(e)
			blockStart[key{e.PID, e.TID}][e.Label] = e.T
		case sim.EvSemAcquire:
			s := get(e)
			k := key{e.PID, e.TID}
			if t0, ok := blockStart[k][e.Label]; ok {
				s.BlockedSem += e.T.Sub(t0)
				delete(blockStart[k], e.Label)
			}
		case sim.EvIOBlock:
			get(e).BlockedIO += time.Duration(e.Arg)
		case sim.EvSyscallEnter:
			get(e).Syscalls++
		case sim.EvPreempt:
			get(e).Preemptions++
		case sim.EvTrap:
			get(e).Traps++
		}
	}

	out := make([]ThreadSummary, 0, len(acc))
	for _, s := range acc {
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].PID != out[j].PID {
			return out[i].PID < out[j].PID
		}
		return out[i].TID < out[j].TID
	})
	return out
}

// RenderSummaries formats thread summaries as a table, labeling PIDs via
// the given map.
func RenderSummaries(summaries []ThreadSummary, labels map[int32]string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %10s %12s %11s %9s %9s %6s\n",
		"thread", "cpu (µs)", "sem-wait(µs)", "io-wait(µs)", "syscalls", "preempts", "traps")
	for _, s := range summaries {
		name, ok := labels[s.PID]
		if !ok {
			continue
		}
		fmt.Fprintf(&b, "%-16s %10.1f %12.1f %11.1f %9d %9d %6d\n",
			fmt.Sprintf("%s/%d", name, s.TID),
			s.Compute.Seconds()*1e6,
			s.BlockedSem.Seconds()*1e6,
			s.BlockedIO.Seconds()*1e6,
			s.Syscalls, s.Preemptions, s.Traps)
	}
	return b.String()
}
