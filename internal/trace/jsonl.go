package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"tocttou/internal/sim"
)

// Filter selects which events a JSONL export keeps. The zero value keeps
// everything.
type Filter struct {
	// Kinds restricts to the listed event kinds; empty means all kinds.
	Kinds []sim.EventKind
	// PID restricts to one process; 0 means all processes.
	PID int32
	// Path restricts to events carrying exactly this path; "" means all.
	Path string
}

// compile flattens the kind list into a mask for O(1) matching.
func (f Filter) compile() (mask [sim.EventKindCount]bool, anyKind bool) {
	if len(f.Kinds) == 0 {
		return mask, true
	}
	for _, k := range f.Kinds {
		if int(k) < len(mask) {
			mask[k] = true
		}
	}
	return mask, false
}

// Match reports whether the filter keeps the event.
func (f Filter) Match(e sim.Event) bool {
	if len(f.Kinds) > 0 {
		ok := false
		for _, k := range f.Kinds {
			if e.Kind == k {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	if f.PID != 0 && e.PID != f.PID {
		return false
	}
	if f.Path != "" && e.Path != f.Path {
		return false
	}
	return true
}

// JSONLWriter streams events as one JSON object per line. It implements
// sim.Tracer, so it can be attached directly to a kernel and write events
// as the round executes, with no intermediate event slice. Encoding is
// hand-appended into one reused buffer: the only steady-state allocations
// are bufio's flushes to the underlying writer.
//
// Schema per line (keys in this order):
//
//	{"t_ns":<int64>,"kind":"<EventKind.String>","cpu":N,"pid":N,"tid":N,
//	 "label":"...","path":"...","arg":N}
//
// label and path are omitted when empty, arg when zero. t_ns is the
// event's virtual timestamp in integer nanoseconds, so a decode is exact
// (no float round-trip).
type JSONLWriter struct {
	bw       *bufio.Writer
	buf      []byte
	kindMask [sim.EventKindCount]bool
	anyKind  bool
	pid      int32
	path     string
	count    int64
	err      error
}

var _ sim.Tracer = (*JSONLWriter)(nil)

// NewJSONLWriter wraps w for streaming export of events passing the filter.
// Call Flush when the run completes; errors from the underlying writer are
// sticky and reported there.
func NewJSONLWriter(w io.Writer, f Filter) *JSONLWriter {
	jw := &JSONLWriter{
		bw:   bufio.NewWriterSize(w, 1<<16),
		buf:  make([]byte, 0, 192),
		pid:  f.PID,
		path: f.Path,
	}
	jw.kindMask, jw.anyKind = f.compile()
	return jw
}

// Emit implements sim.Tracer.
func (jw *JSONLWriter) Emit(e sim.Event) {
	if jw.err != nil {
		return
	}
	if !jw.anyKind && (int(e.Kind) >= len(jw.kindMask) || !jw.kindMask[e.Kind]) {
		return
	}
	if jw.pid != 0 && e.PID != jw.pid {
		return
	}
	if jw.path != "" && e.Path != jw.path {
		return
	}
	buf := append(jw.buf[:0], `{"t_ns":`...)
	buf = strconv.AppendInt(buf, int64(e.T), 10)
	buf = append(buf, `,"kind":`...)
	buf = appendJSONString(buf, e.Kind.String())
	buf = append(buf, `,"cpu":`...)
	buf = strconv.AppendInt(buf, int64(e.CPU), 10)
	buf = append(buf, `,"pid":`...)
	buf = strconv.AppendInt(buf, int64(e.PID), 10)
	buf = append(buf, `,"tid":`...)
	buf = strconv.AppendInt(buf, int64(e.TID), 10)
	if e.Label != "" {
		buf = append(buf, `,"label":`...)
		buf = appendJSONString(buf, e.Label)
	}
	if e.Path != "" {
		buf = append(buf, `,"path":`...)
		buf = appendJSONString(buf, e.Path)
	}
	if e.Arg != 0 {
		buf = append(buf, `,"arg":`...)
		buf = strconv.AppendInt(buf, e.Arg, 10)
	}
	buf = append(buf, '}', '\n')
	jw.buf = buf
	if _, err := jw.bw.Write(buf); err != nil {
		jw.err = err
		return
	}
	jw.count++
}

// Count returns the number of events written so far.
func (jw *JSONLWriter) Count() int64 { return jw.count }

// Flush drains the buffer and returns the first error encountered during
// the export, if any.
func (jw *JSONLWriter) Flush() error {
	if jw.err != nil {
		return jw.err
	}
	jw.err = jw.bw.Flush()
	return jw.err
}

// appendJSONString appends s as a JSON string literal, escaping the
// characters JSON requires (quotes, backslashes, control bytes). Event
// labels and paths are ASCII in practice, so the fast path is a straight
// byte copy.
func appendJSONString(buf []byte, s string) []byte {
	buf = append(buf, '"')
	start := 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c != '"' && c != '\\' && c >= 0x20 {
			continue
		}
		buf = append(buf, s[start:i]...)
		switch c {
		case '"':
			buf = append(buf, '\\', '"')
		case '\\':
			buf = append(buf, '\\', '\\')
		case '\n':
			buf = append(buf, '\\', 'n')
		case '\r':
			buf = append(buf, '\\', 'r')
		case '\t':
			buf = append(buf, '\\', 't')
		default:
			const hex = "0123456789abcdef"
			buf = append(buf, '\\', 'u', '0', '0', hex[c>>4], hex[c&0xf])
		}
		start = i + 1
	}
	buf = append(buf, s[start:]...)
	return append(buf, '"')
}

// WriteJSONL exports an already-recorded event slice through the filter.
func WriteJSONL(w io.Writer, events []sim.Event, f Filter) error {
	jw := NewJSONLWriter(w, f)
	for _, e := range events {
		jw.Emit(e)
	}
	return jw.Flush()
}

// jsonlEvent mirrors the export schema for decoding.
type jsonlEvent struct {
	TNs   int64  `json:"t_ns"`
	Kind  string `json:"kind"`
	CPU   int32  `json:"cpu"`
	PID   int32  `json:"pid"`
	TID   int32  `json:"tid"`
	Label string `json:"label"`
	Path  string `json:"path"`
	Arg   int64  `json:"arg"`
}

// ReadJSONL decodes a JSONL export back into events. Blank lines are
// skipped; an unknown kind name or malformed line is an error naming the
// offending line number.
func ReadJSONL(r io.Reader) ([]sim.Event, error) {
	var events []sim.Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var je jsonlEvent
		if err := json.Unmarshal(line, &je); err != nil {
			return nil, fmt.Errorf("trace: jsonl line %d: %w", lineno, err)
		}
		kind, ok := sim.ParseEventKind(je.Kind)
		if !ok {
			return nil, fmt.Errorf("trace: jsonl line %d: unknown event kind %q", lineno, je.Kind)
		}
		events = append(events, sim.Event{
			T: sim.Time(je.TNs), Kind: kind,
			CPU: je.CPU, PID: je.PID, TID: je.TID,
			Label: je.Label, Path: je.Path, Arg: je.Arg,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: jsonl line %d: %w", lineno, err)
	}
	return events, nil
}
