package trace

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"tocttou/internal/sim"
)

// mkEvents builds a synthetic round trace resembling a gedit attack:
// victim pid 1 renames (binding the target root-owned at t=100µs) then
// chmods at t=150µs; attacker pid 2 stats at 110µs and unlinks at 140µs.
func mkEvents() []sim.Event {
	us := func(x float64) sim.Time { return sim.Time(x * 1000) }
	return []sim.Event{
		{T: us(90), Kind: sim.EvSyscallEnter, PID: 1, TID: 1, Label: "rename", Path: "/h/a/tmp"},
		{T: us(95), Kind: sim.EvSyscallEnter, PID: 2, TID: 2, Label: "stat", Path: "/h/a/f"},
		{T: us(98), Kind: sim.EvSyscallExit, PID: 2, TID: 2, Label: "stat", Path: "/h/a/f"},
		{T: us(100), Kind: sim.EvNameBind, PID: 1, TID: 1, Path: "/h/a/f", Arg: 0},
		{T: us(104), Kind: sim.EvSyscallExit, PID: 1, TID: 1, Label: "rename", Path: "/h/a/f"},
		{T: us(110), Kind: sim.EvSyscallEnter, PID: 2, TID: 2, Label: "stat", Path: "/h/a/f"},
		{T: us(114), Kind: sim.EvSyscallExit, PID: 2, TID: 2, Label: "stat", Path: "/h/a/f"},
		{T: us(116), Kind: sim.EvCompute, PID: 2, TID: 2, Arg: int64(2 * time.Microsecond)},
		{T: us(140), Kind: sim.EvSyscallEnter, PID: 2, TID: 2, Label: "unlink", Path: "/h/a/f"},
		{T: us(141), Kind: sim.EvSemBlock, PID: 2, TID: 2, Label: "ino:7"},
		{T: us(144), Kind: sim.EvSemAcquire, PID: 2, TID: 2, Label: "ino:7"},
		{T: us(148), Kind: sim.EvSyscallExit, PID: 2, TID: 2, Label: "unlink", Path: "/h/a/f", Arg: 0},
		{T: us(150), Kind: sim.EvSyscallEnter, PID: 1, TID: 1, Label: "chmod", Path: "/h/a/f"},
		{T: us(155), Kind: sim.EvSyscallExit, PID: 1, TID: 1, Label: "chmod", Path: "/h/a/f"},
	}
}

func TestFirstBind(t *testing.T) {
	l := New(mkEvents())
	at, ok := l.FirstBind("/h/a/f", 0)
	if !ok || at != sim.Time(100*1000) {
		t.Errorf("bind = %v, %v; want 100µs", at, ok)
	}
	if _, ok := l.FirstBind("/h/a/f", 1000); ok {
		t.Error("no bind with uid 1000 exists")
	}
	if _, ok := l.FirstBind("/other", 0); ok {
		t.Error("no bind for other path exists")
	}
}

func TestSyscallQueries(t *testing.T) {
	l := New(mkEvents())
	at, ok := l.FirstSyscallEnter(1, "chmod", "", 0)
	if !ok || at != sim.Time(150*1000) {
		t.Errorf("chmod enter = %v, %v", at, ok)
	}
	// From-time filtering.
	if _, ok := l.FirstSyscallEnter(2, "stat", "", sim.Time(120*1000)); ok {
		t.Error("no stat after 120µs")
	}
	// Path filtering.
	if _, ok := l.FirstSyscallEnter(2, "unlink", "/wrong", 0); ok {
		t.Error("wrong path must not match")
	}
	last, ok := l.LastSyscallEnterBefore(2, "stat", "/h/a/f", sim.Time(140*1000))
	if !ok || last != sim.Time(110*1000) {
		t.Errorf("last stat = %v, %v; want 110µs", last, ok)
	}
	enter, exit, ok := l.SyscallSpan(2, "unlink", "/h/a/f", 0)
	if !ok || enter != sim.Time(140*1000) || exit != sim.Time(148*1000) {
		t.Errorf("unlink span = [%v, %v], %v", enter, exit, ok)
	}
	ex, ok := l.FirstSyscallExit(1, "rename", "", 0)
	if !ok || ex != sim.Time(104*1000) {
		t.Errorf("rename exit = %v, %v", ex, ok)
	}
}

func TestMeasureLD(t *testing.T) {
	l := New(mkEvents())
	r := MeasureLD(l, LDParams{
		VictimPID: 1, AttackerPID: 2,
		Target: "/h/a/f", UseSyscall: "chmod",
	})
	if !r.WindowFound || !r.Detected {
		t.Fatalf("window/detected = %v/%v", r.WindowFound, r.Detected)
	}
	// D = unlink enter (140) - last stat enter before it (110) = 30µs.
	if r.D != 30*time.Microsecond {
		t.Errorf("D = %v, want 30µs", r.D)
	}
	// L = (t3 - D) - t1 = (150 - 30) - 100 = 20µs.
	if r.L != 20*time.Microsecond {
		t.Errorf("L = %v, want 20µs", r.L)
	}
	if r.Lmicros() != 20 || r.Dmicros() != 30 {
		t.Errorf("micros = %v/%v", r.Lmicros(), r.Dmicros())
	}
}

func TestMeasureLDNoWindow(t *testing.T) {
	l := New(nil)
	r := MeasureLD(l, LDParams{Target: "/x", UseSyscall: "chown"})
	if r.WindowFound || r.Detected {
		t.Error("empty trace should yield nothing")
	}
}

func TestMeasureLDWindowWithoutDetection(t *testing.T) {
	evs := mkEvents()
	// Remove the attacker's unlink.
	var filtered []sim.Event
	for _, e := range evs {
		if e.Label == "unlink" {
			continue
		}
		filtered = append(filtered, e)
	}
	r := MeasureLD(New(filtered), LDParams{
		VictimPID: 1, AttackerPID: 2, Target: "/h/a/f", UseSyscall: "chmod",
	})
	if !r.WindowFound {
		t.Error("window should still be found")
	}
	if r.Detected {
		t.Error("no unlink means no detection")
	}
}

func TestWindowDuration(t *testing.T) {
	l := New(mkEvents())
	d, ok := l.WindowDuration(1, "/h/a/f", "chmod")
	if !ok || d != 50*time.Microsecond {
		t.Errorf("window = %v, %v; want 50µs", d, ok)
	}
	if _, ok := l.WindowDuration(1, "/nope", "chmod"); ok {
		t.Error("missing target must fail")
	}
}

func TestBuildTimeline(t *testing.T) {
	l := New(mkEvents())
	lanes := BuildTimeline(l, map[int32]string{1: "gedit", 2: "attacker"})
	if len(lanes) != 2 {
		t.Fatalf("lanes = %d, want 2", len(lanes))
	}
	if lanes[0].Label != "gedit/1" || lanes[1].Label != "attacker/2" {
		t.Errorf("labels = %q, %q", lanes[0].Label, lanes[1].Label)
	}
	// The attacker lane must contain the unlink syscall span with a
	// nested blocked span.
	var unlink, blocked *Span
	for i := range lanes[1].Spans {
		s := &lanes[1].Spans[i]
		if s.Kind == SpanSyscall && s.Name == "unlink" {
			unlink = s
		}
		if s.Kind == SpanBlocked {
			blocked = s
		}
	}
	if unlink == nil || unlink.Duration() != 8*time.Microsecond {
		t.Fatalf("unlink span missing or wrong: %+v", unlink)
	}
	if blocked == nil || blocked.Duration() != 3*time.Microsecond {
		t.Fatalf("blocked span missing or wrong: %+v", blocked)
	}
	if blocked.Start < unlink.Start || blocked.End > unlink.End {
		t.Error("blocked span must nest inside the unlink span")
	}
}

func TestBuildTimelineSkipsUnlabeledPIDs(t *testing.T) {
	l := New(mkEvents())
	lanes := BuildTimeline(l, map[int32]string{1: "gedit"})
	if len(lanes) != 1 {
		t.Fatalf("lanes = %d, want 1", len(lanes))
	}
}

func TestLaneClip(t *testing.T) {
	ln := Lane{Spans: []Span{
		{Kind: SpanSyscall, Name: "a", Start: 0, End: 10},
		{Kind: SpanSyscall, Name: "b", Start: 20, End: 30},
	}}
	got := ln.Clip(5, 25)
	if len(got) != 2 {
		t.Fatalf("clip = %d spans, want 2", len(got))
	}
	if got[0].Start != 5 || got[0].End != 10 {
		t.Errorf("span a clipped to [%v, %v]", got[0].Start, got[0].End)
	}
	if got[1].Start != 20 || got[1].End != 25 {
		t.Errorf("span b clipped to [%v, %v]", got[1].Start, got[1].End)
	}
	if out := ln.Clip(100, 200); out != nil {
		t.Errorf("out-of-range clip = %v, want nil", out)
	}
}

func TestRenderASCII(t *testing.T) {
	l := New(mkEvents())
	lanes := BuildTimeline(l, map[int32]string{1: "gedit", 2: "attacker"})
	out := RenderASCII(lanes, sim.Time(80*1000), sim.Time(160*1000), 80)
	for _, want := range []string{"gedit/1", "attacker/2", "rename", "unlink", "chmod"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered timeline missing %q:\n%s", want, out)
		}
	}
	if RenderASCII(lanes, 10, 10, 80) != "" {
		t.Error("empty time range should render empty")
	}
}

func TestWriteCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCSV(&buf, mkEvents()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != len(mkEvents())+1 {
		t.Fatalf("csv lines = %d, want %d", len(lines), len(mkEvents())+1)
	}
	if !strings.HasPrefix(lines[0], "t_us,kind,cpu,pid,tid") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(buf.String(), "name-bind") {
		t.Error("csv missing name-bind row")
	}
}

func TestSummarize(t *testing.T) {
	l := New(mkEvents())
	sums := Summarize(l)
	if len(sums) != 2 {
		t.Fatalf("summaries = %d, want 2", len(sums))
	}
	var attacker *ThreadSummary
	for i := range sums {
		if sums[i].PID == 2 {
			attacker = &sums[i]
		}
	}
	if attacker == nil {
		t.Fatal("attacker summary missing")
	}
	if attacker.Syscalls != 3 { // two stats and the unlink
		t.Errorf("syscalls = %d, want 3", attacker.Syscalls)
	}
	if attacker.BlockedSem != 3*time.Microsecond {
		t.Errorf("sem wait = %v, want 3µs", attacker.BlockedSem)
	}
	if attacker.Compute != 2*time.Microsecond {
		t.Errorf("compute = %v, want 2µs", attacker.Compute)
	}
	out := RenderSummaries(sums, map[int32]string{1: "gedit", 2: "attacker"})
	for _, want := range []string{"gedit/1", "attacker/2", "sem-wait"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary table missing %q:\n%s", want, out)
		}
	}
}

func TestSummarizeSkipsUnlabeled(t *testing.T) {
	sums := Summarize(New(mkEvents()))
	out := RenderSummaries(sums, map[int32]string{1: "gedit"})
	if strings.Contains(out, "/2") {
		t.Error("unlabeled PID must be skipped in rendering")
	}
}
