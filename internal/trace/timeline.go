package trace

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"tocttou/internal/sim"
)

// SpanKind classifies timeline spans.
type SpanKind uint8

// Span kinds, ordered roughly by rendering priority (later kinds overlay
// earlier ones when they overlap).
const (
	SpanSyscall SpanKind = iota + 1
	SpanCompute
	SpanTrap
	SpanBlocked
	SpanIO
)

// String returns a short name for the kind.
func (k SpanKind) String() string {
	switch k {
	case SpanSyscall:
		return "syscall"
	case SpanCompute:
		return "comp"
	case SpanTrap:
		return "trap"
	case SpanBlocked:
		return "blocked"
	case SpanIO:
		return "io"
	default:
		return fmt.Sprintf("span(%d)", uint8(k))
	}
}

// Span is one interval in a thread's timeline.
type Span struct {
	Kind  SpanKind
	Name  string // syscall name, "comp", semaphore name, ...
	Start sim.Time
	End   sim.Time
}

// Duration returns the span length.
func (s Span) Duration() time.Duration { return s.End.Sub(s.Start) }

// Lane is one thread's sequence of spans.
type Lane struct {
	Label string
	TID   int32
	PID   int32
	Spans []Span
}

// BuildTimeline reconstructs per-thread lanes from a trace. labels maps
// PIDs to display names; threads of unlabeled processes are skipped.
// Kernel housekeeping (ticks, noise) is not shown.
func BuildTimeline(l *Log, labels map[int32]string) []Lane {
	type key struct{ pid, tid int32 }
	lanes := make(map[key]*Lane)
	open := make(map[key][]int) // stack of open span indexes (syscalls can nest blocked spans)

	laneOf := func(e sim.Event) (*Lane, key, bool) {
		name, ok := labels[e.PID]
		if !ok {
			return nil, key{}, false
		}
		k := key{e.PID, e.TID}
		ln, ok := lanes[k]
		if !ok {
			ln = &Lane{Label: fmt.Sprintf("%s/%d", name, e.TID), TID: e.TID, PID: e.PID}
			lanes[k] = ln
		}
		return ln, k, true
	}

	for _, e := range l.Events {
		ln, k, ok := laneOf(e)
		if !ok {
			continue
		}
		switch e.Kind {
		case sim.EvSyscallEnter:
			ln.Spans = append(ln.Spans, Span{Kind: SpanSyscall, Name: e.Label, Start: e.T, End: e.T})
			open[k] = append(open[k], len(ln.Spans)-1)
		case sim.EvSyscallExit:
			if st := open[k]; len(st) > 0 {
				idx := st[len(st)-1]
				open[k] = st[:len(st)-1]
				ln.Spans[idx].End = e.T
			}
		case sim.EvSemBlock:
			ln.Spans = append(ln.Spans, Span{Kind: SpanBlocked, Name: e.Label, Start: e.T, End: e.T})
			open[k] = append(open[k], len(ln.Spans)-1)
		case sim.EvSemAcquire:
			// Close a pending blocked span if one is open for this sem.
			if st := open[k]; len(st) > 0 {
				idx := st[len(st)-1]
				if ln.Spans[idx].Kind == SpanBlocked && ln.Spans[idx].Name == e.Label {
					open[k] = st[:len(st)-1]
					ln.Spans[idx].End = e.T
				}
			}
		case sim.EvCompute:
			d := time.Duration(e.Arg)
			ln.Spans = append(ln.Spans, Span{Kind: SpanCompute, Name: "comp", Start: e.T.Add(-d), End: e.T})
		case sim.EvTrap:
			d := time.Duration(e.Arg)
			ln.Spans = append(ln.Spans, Span{Kind: SpanTrap, Name: "trap", Start: e.T, End: e.T.Add(d)})
		case sim.EvIOBlock:
			d := time.Duration(e.Arg)
			ln.Spans = append(ln.Spans, Span{Kind: SpanIO, Name: "io", Start: e.T, End: e.T.Add(d)})
		}
	}

	out := make([]Lane, 0, len(lanes))
	for _, ln := range lanes {
		out = append(out, *ln)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].PID != out[j].PID {
			return out[i].PID < out[j].PID
		}
		return out[i].TID < out[j].TID
	})
	return out
}

// Clip returns the lane's spans overlapping [from, to], trimmed.
func (ln Lane) Clip(from, to sim.Time) []Span {
	var out []Span
	for _, s := range ln.Spans {
		if s.End <= from || s.Start >= to {
			continue
		}
		if s.Start < from {
			s.Start = from
		}
		if s.End > to {
			s.End = to
		}
		out = append(out, s)
	}
	return out
}

// RenderASCII draws lanes as text Gantt bars over [from, to], width
// columns wide, in the style of the paper's Figures 8 and 10. Syscall
// spans are labeled with their first letters; blocked time renders as '░'.
func RenderASCII(lanes []Lane, from, to sim.Time, width int) string {
	if width < 20 {
		width = 20
	}
	span := to.Sub(from)
	if span <= 0 {
		return ""
	}
	col := func(t sim.Time) int {
		c := int(float64(t.Sub(from)) / float64(span) * float64(width))
		if c < 0 {
			c = 0
		}
		if c > width-1 {
			c = width - 1
		}
		return c
	}
	var b strings.Builder
	fmt.Fprintf(&b, "time: %.1fµs .. %.1fµs (%.1fµs across %d cols)\n",
		from.Micros(), to.Micros(), float64(span)/1e3, width)
	for _, ln := range lanes {
		row := make([]byte, width)
		for i := range row {
			row[i] = ' '
		}
		paint := func(s Span, fill byte, label string) {
			c0, c1 := col(s.Start), col(s.End)
			if c1 <= c0 {
				c1 = c0 + 1
			}
			for i := c0; i < c1 && i < width; i++ {
				row[i] = fill
			}
			for i := 0; i < len(label) && c0+i < c1 && c0+i < width; i++ {
				row[c0+i] = label[i]
			}
		}
		spans := ln.Clip(from, to)
		// Paint in kind order: user compute first (it fills the gaps),
		// then syscall bodies over it, then traps/waits on top.
		for _, kind := range []SpanKind{SpanCompute, SpanSyscall, SpanTrap, SpanBlocked, SpanIO} {
			for _, s := range spans {
				if s.Kind != kind {
					continue
				}
				switch kind {
				case SpanSyscall:
					paint(s, '=', s.Name)
				case SpanCompute:
					paint(s, '-', "comp")
				case SpanTrap:
					paint(s, '#', "trap")
				case SpanBlocked:
					paint(s, '\xdb', "") // placeholder, replaced below
				case SpanIO:
					paint(s, '~', "io")
				}
			}
		}
		line := strings.ReplaceAll(string(row), "\xdb", "░")
		fmt.Fprintf(&b, "%-14s |%s|\n", ln.Label, line)
	}
	// Describe each lane's spans precisely below the chart.
	for _, ln := range lanes {
		fmt.Fprintf(&b, "%s:\n", ln.Label)
		for _, s := range ln.Clip(from, to) {
			fmt.Fprintf(&b, "  %-8s %-14s %9.1fµs .. %9.1fµs (%6.1fµs)\n",
				s.Kind, s.Name, s.Start.Micros(), s.End.Micros(), float64(s.Duration())/1e3)
		}
	}
	return b.String()
}
