package trace_test

// Regression tests for the binary-searched Log queries and the export
// paths, run against a real recorded round trace rather than a synthetic
// one: the queries must answer identically to straightforward linear
// reference scans, and the JSONL export must round-trip exactly.

import (
	"bytes"
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
	"testing"

	"tocttou/internal/attack"
	"tocttou/internal/core"
	"tocttou/internal/machine"
	"tocttou/internal/sim"
	"tocttou/internal/trace"
	"tocttou/internal/victim"
)

// recordRound runs one traced vi round on the SMP testbed and returns its
// event log. The scenario matches the paper's Figure 7 setup so the trace
// exercises every event kind the queries care about.
func recordRound(t testing.TB) []sim.Event {
	t.Helper()
	round, err := core.RunRound(core.Scenario{
		Machine:    machine.SMP2(),
		Victim:     victim.NewVi(),
		Attacker:   attack.NewV1(),
		UseSyscall: "chown",
		FileSize:   512 << 10,
		Seed:       424243,
		Trace:      true,
	})
	if err != nil {
		t.Fatalf("record round: %v", err)
	}
	if len(round.Events) < 100 {
		t.Fatalf("recorded only %d events; want a substantial trace", len(round.Events))
	}
	return round.Events
}

// The naive references below are the pre-optimization linear scans; the
// binary-searched implementations must agree with them on every probe.

func naiveFirstSyscall(events []sim.Event, kind sim.EventKind, pid int32, name, path string, from sim.Time) (sim.Time, bool) {
	for _, e := range events {
		if e.T < from || e.Kind != kind || e.PID != pid || e.Label != name {
			continue
		}
		if path != "" && e.Path != path {
			continue
		}
		return e.T, true
	}
	return 0, false
}

func naiveLastSyscallEnterBefore(events []sim.Event, pid int32, name, path string, limit sim.Time) (sim.Time, bool) {
	var found bool
	var at sim.Time
	for _, e := range events {
		if e.T >= limit {
			break
		}
		if e.Kind != sim.EvSyscallEnter || e.PID != pid || e.Label != name {
			continue
		}
		if path != "" && e.Path != path {
			continue
		}
		at, found = e.T, true
	}
	return at, found
}

func naiveSuspendedInWindow(events []sim.Event, pid int32, from, to sim.Time) bool {
	for _, e := range events {
		if e.T < from {
			continue
		}
		if e.T > to {
			break
		}
		if e.PID != pid {
			continue
		}
		switch e.Kind {
		case sim.EvPreempt, sim.EvBlock, sim.EvIOBlock, sim.EvSemBlock:
			return true
		}
	}
	return false
}

func TestQueriesMatchNaiveOnRecordedTrace(t *testing.T) {
	events := recordRound(t)
	l := trace.New(events)

	// Every (pid, syscall, path) combination present in the trace, plus a
	// few that are not.
	type key struct {
		pid  int32
		name string
		path string
	}
	keys := map[key]bool{}
	for _, e := range events {
		if e.Kind == sim.EvSyscallEnter {
			keys[key{e.PID, e.Label, ""}] = true
			keys[key{e.PID, e.Label, e.Path}] = true
		}
	}
	keys[key{1, "open", "/no/such/path"}] = true
	keys[key{99, "open", ""}] = true

	// Probe times: boundaries, every 7th event's timestamp and its ±1ns
	// neighbors — these land exactly on, just before, and just after real
	// events, the off-by-one hot spots for a binary-searched bound.
	probes := []sim.Time{0, 1, events[len(events)-1].T, events[len(events)-1].T + 1}
	for i := 0; i < len(events); i += 7 {
		probes = append(probes, events[i].T-1, events[i].T, events[i].T+1)
	}

	checked := 0
	for k := range keys {
		for _, from := range probes {
			gotT, gotOK := l.FirstSyscallEnter(k.pid, k.name, k.path, from)
			wantT, wantOK := naiveFirstSyscall(events, sim.EvSyscallEnter, k.pid, k.name, k.path, from)
			if gotT != wantT || gotOK != wantOK {
				t.Fatalf("FirstSyscallEnter(%d, %q, %q, %v) = %v,%v; naive %v,%v",
					k.pid, k.name, k.path, from, gotT, gotOK, wantT, wantOK)
			}
			gotT, gotOK = l.FirstSyscallExit(k.pid, k.name, k.path, from)
			wantT, wantOK = naiveFirstSyscall(events, sim.EvSyscallExit, k.pid, k.name, k.path, from)
			if gotT != wantT || gotOK != wantOK {
				t.Fatalf("FirstSyscallExit(%d, %q, %q, %v) = %v,%v; naive %v,%v",
					k.pid, k.name, k.path, from, gotT, gotOK, wantT, wantOK)
			}
			gotT, gotOK = l.LastSyscallEnterBefore(k.pid, k.name, k.path, from)
			wantT, wantOK = naiveLastSyscallEnterBefore(events, k.pid, k.name, k.path, from)
			if gotT != wantT || gotOK != wantOK {
				t.Fatalf("LastSyscallEnterBefore(%d, %q, %q, %v) = %v,%v; naive %v,%v",
					k.pid, k.name, k.path, from, gotT, gotOK, wantT, wantOK)
			}
			checked += 3
		}
	}
	for _, pid := range []int32{1, 2, 99} {
		for i := 0; i < len(probes); i += 3 {
			for j := i; j < len(probes); j += 5 {
				from, to := probes[i], probes[j]
				if got, want := l.SuspendedInWindow(pid, from, to), naiveSuspendedInWindow(events, pid, from, to); got != want {
					t.Fatalf("SuspendedInWindow(%d, %v, %v) = %v; naive %v", pid, from, to, got, want)
				}
				checked++
			}
		}
	}
	if checked < 1000 {
		t.Fatalf("only %d query probes executed; regression coverage too thin", checked)
	}
}

// TestWriteCSVMatchesEncodingCSV pins the hand-rolled CSV writer to the
// exact byte output of the encoding/csv implementation it replaced,
// including quoting of awkward fields.
func TestWriteCSVMatchesEncodingCSV(t *testing.T) {
	events := recordRound(t)
	events = append(events,
		sim.Event{T: 1, Kind: sim.EvMark, Label: `comma,inside`, Path: `quote"inside`},
		sim.Event{T: 2, Kind: sim.EvMark, Label: " leading-space", Arg: -7},
	)

	var got bytes.Buffer
	if err := trace.WriteCSV(&got, events); err != nil {
		t.Fatal(err)
	}

	var want bytes.Buffer
	cw := csv.NewWriter(&want)
	cw.Write([]string{"t_us", "kind", "cpu", "pid", "tid", "label", "path", "arg"})
	for _, e := range events {
		cw.Write([]string{
			fmt.Sprintf("%.3f", e.T.Micros()),
			e.Kind.String(),
			strconv.Itoa(int(e.CPU)),
			strconv.Itoa(int(e.PID)),
			strconv.Itoa(int(e.TID)),
			e.Label,
			e.Path,
			strconv.FormatInt(e.Arg, 10),
		})
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		t.Fatal(err)
	}
	if got.String() != want.String() {
		t.Fatalf("CSV output diverged from encoding/csv reference\ngot  %d bytes\nwant %d bytes", got.Len(), want.Len())
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	events := recordRound(t)
	events = append(events, sim.Event{
		T: events[len(events)-1].T + 1, Kind: sim.EvMark,
		Label: "odd \"label\"\twith\nescapes\x01", Path: `C:\not\a\unix\path`, Arg: -42,
	})

	var buf bytes.Buffer
	if err := trace.WriteJSONL(&buf, events, trace.Filter{}); err != nil {
		t.Fatal(err)
	}
	back, err := trace.ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(events) {
		t.Fatalf("round-trip length = %d, want %d", len(back), len(events))
	}
	for i := range events {
		if back[i] != events[i] {
			t.Fatalf("event %d round-trip mismatch:\ngot  %+v\nwant %+v", i, back[i], events[i])
		}
	}
}

func TestJSONLFilter(t *testing.T) {
	events := recordRound(t)
	// Derive the probe filters from the trace itself so each one is
	// guaranteed to select a non-empty, proper subset.
	var somePID int32
	var somePath string
	for _, e := range events {
		if e.Kind == sim.EvSyscallEnter && e.PID != 0 && e.Path != "" {
			somePID, somePath = e.PID, e.Path
			break
		}
	}
	if somePID == 0 || somePath == "" {
		t.Fatal("recorded trace has no syscall with a pid and path")
	}
	filters := []trace.Filter{
		{Kinds: []sim.EventKind{sim.EvSyscallEnter, sim.EvSyscallExit}},
		{PID: somePID},
		{Path: somePath},
		{Kinds: []sim.EventKind{sim.EvSyscallEnter}, PID: somePID, Path: somePath},
	}
	for _, f := range filters {
		var buf bytes.Buffer
		if err := trace.WriteJSONL(&buf, events, f); err != nil {
			t.Fatal(err)
		}
		back, err := trace.ReadJSONL(&buf)
		if err != nil {
			t.Fatal(err)
		}
		var want []sim.Event
		for _, e := range events {
			if f.Match(e) {
				want = append(want, e)
			}
		}
		if len(back) != len(want) {
			t.Fatalf("filter %+v kept %d events, want %d", f, len(back), len(want))
		}
		for i := range want {
			if back[i] != want[i] {
				t.Fatalf("filter %+v event %d mismatch", f, i)
			}
		}
		if len(f.Kinds) > 0 && len(want) == 0 {
			t.Fatalf("filter %+v matched nothing; pick a filter the trace exercises", f)
		}
	}
}

func TestReadJSONLRejectsMalformed(t *testing.T) {
	if _, err := trace.ReadJSONL(strings.NewReader(`{"t_ns":1,"kind":"no-such-kind"}` + "\n")); err == nil {
		t.Error("unknown kind must error")
	}
	if _, err := trace.ReadJSONL(strings.NewReader("{not json}\n")); err == nil {
		t.Error("malformed JSON must error")
	}
	events, err := trace.ReadJSONL(strings.NewReader("\n\n"))
	if err != nil || len(events) != 0 {
		t.Errorf("blank lines = %v, %v; want empty, nil", events, err)
	}
}

// bigTrace tiles one recorded round out to n events for export benchmarks.
func bigTrace(tb testing.TB, n int) []sim.Event {
	base := recordRound(tb)
	out := make([]sim.Event, 0, n)
	var shift sim.Time
	for len(out) < n {
		for _, e := range base {
			if len(out) >= n {
				break
			}
			e.T += shift
			out = append(out, e)
		}
		shift = out[len(out)-1].T + 1
	}
	return out
}

func BenchmarkWriteCSV(b *testing.B) {
	events := bigTrace(b, 65536)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := trace.WriteCSV(io.Discard, events); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(events)))
}

func BenchmarkWriteJSONL(b *testing.B) {
	events := bigTrace(b, 65536)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := trace.WriteJSONL(io.Discard, events, trace.Filter{}); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(events)))
}

func BenchmarkLogQueries(b *testing.B) {
	events := bigTrace(b, 65536)
	l := trace.New(events)
	last := events[len(events)-1].T
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		from := sim.Time(int64(i) % int64(last))
		l.FirstSyscallEnter(1, "chown", "", from)
		l.FirstSyscallExit(1, "chown", "", from)
		l.LastSyscallEnterBefore(2, "stat", "", from)
	}
}
