package trace_test

// The JSONL export must carry fault-trace events exactly: an injected
// errno failure is traced as EvFault with the errno in Arg, and a tool
// consuming the export (or re-importing it for the trace queries) must
// see the same event the kernel recorded.

import (
	"bytes"
	"testing"
	"time"

	"tocttou/internal/attack"
	"tocttou/internal/core"
	"tocttou/internal/fault"
	"tocttou/internal/machine"
	"tocttou/internal/sim"
	"tocttou/internal/trace"
	"tocttou/internal/victim"
)

// recordFaultyRound runs traced vi rounds under an aggressive fault plan
// until one actually delivers an injected fs error, and returns its log.
func recordFaultyRound(t *testing.T) []sim.Event {
	t.Helper()
	for seed := int64(98001); seed < 98031; seed++ {
		round, err := core.RunRound(core.Scenario{
			Machine: machine.SMP2(), Victim: victim.NewVi(), Attacker: attack.NewV1(),
			UseSyscall: "chown", FileSize: 100 << 10, Seed: seed, Trace: true,
			Faults: fault.Plan{
				Seed: 4409, FSRate: 0.3, SemIntrRate: 0.3,
				SemIntrDelay: time.Microsecond,
			},
			Watchdog: 5 * time.Second,
		})
		if err != nil {
			t.Fatalf("faulty round (seed %d): %v", seed, err)
		}
		if round.Faults.FSErrors > 0 {
			return round.Events
		}
	}
	t.Fatal("no round delivered an fs fault at rate 0.3 in 30 tries")
	return nil
}

func TestJSONLFaultEventsRoundTrip(t *testing.T) {
	events := recordFaultyRound(t)
	nfault := 0
	for _, e := range events {
		if e.Kind == sim.EvFault {
			nfault++
			if e.Arg == 0 {
				t.Errorf("fault event %+v carries no errno in Arg", e)
			}
		}
	}
	if nfault == 0 {
		t.Fatal("trace of a faulted round has no EvFault events")
	}

	var buf bytes.Buffer
	if err := trace.WriteJSONL(&buf, events, trace.Filter{}); err != nil {
		t.Fatal(err)
	}
	back, err := trace.ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(events) {
		t.Fatalf("round-trip length = %d, want %d", len(back), len(events))
	}
	for i := range events {
		if back[i] != events[i] {
			t.Fatalf("event %d round-trip mismatch:\ngot  %+v\nwant %+v", i, back[i], events[i])
		}
	}

	// A kind filter selects exactly the fault events.
	buf.Reset()
	f := trace.Filter{Kinds: []sim.EventKind{sim.EvFault}}
	if err := trace.WriteJSONL(&buf, events, f); err != nil {
		t.Fatal(err)
	}
	faults, err := trace.ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(faults) != nfault {
		t.Fatalf("filtered export kept %d events, want %d", len(faults), nfault)
	}
}
