module tocttou

go 1.22
