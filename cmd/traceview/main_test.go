package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tocttou/internal/attack"
	"tocttou/internal/core"
	"tocttou/internal/machine"
	"tocttou/internal/trace"
	"tocttou/internal/victim"
)

// TestFlagValidationAtParseTime pins the convention that every bad flag
// value is rejected before any round runs: each invocation here must fail,
// and fail fast (a lazily validated -want would first burn 512 rounds).
func TestFlagValidationAtParseTime(t *testing.T) {
	cases := []struct {
		args []string
		want string
	}{
		{[]string{"-machine", "nope"}, "unknown machine"},
		{[]string{"-victim", "nope"}, "unknown victim"},
		{[]string{"-attacker", "nope"}, "unknown attacker"},
		{[]string{"-want", "maybe"}, "unknown -want"},
		{[]string{"-width", "0"}, "-width must be positive"},
		{[]string{"-size", "-3"}, "-size must be a positive"},
		{[]string{"-input", "x.jsonl", "-machine", "up"}, "only apply when running a live round"},
		{[]string{"-input", "x.jsonl", "-want", "success", "-seed", "9"}, "only apply when running a live round"},
	}
	for _, tc := range cases {
		err := run(tc.args)
		if err == nil {
			t.Errorf("run(%v): expected an error, got none", tc.args)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("run(%v) = %q, want it to mention %q", tc.args, err, tc.want)
		}
	}
}

// TestInputErrorsAreFatal pins the non-zero-exit contract for -input: an
// unreadable file, a malformed line, and an empty export are all errors
// (main turns any run() error into exit status 1).
func TestInputErrorsAreFatal(t *testing.T) {
	dir := t.TempDir()

	if err := run([]string{"-input", filepath.Join(dir, "absent.jsonl")}); err == nil {
		t.Error("unreadable -input file: expected an error, got none")
	}

	bad := filepath.Join(dir, "bad.jsonl")
	if err := os.WriteFile(bad, []byte("{\"t_ns\":0,\"kind\":\"spawn\"}\nnot json at all\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	err := run([]string{"-input", bad})
	if err == nil {
		t.Fatal("malformed -input JSONL: expected an error, got none")
	}
	if !strings.Contains(err.Error(), "line 2") {
		t.Errorf("malformed-line error %q does not name the offending line", err)
	}

	empty := filepath.Join(dir, "empty.jsonl")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-input", empty}); err == nil {
		t.Error("empty -input export: expected an error, got none")
	}
}

// TestInputRendersExportedRound round-trips a real traced round through the
// JSONL export and back through -input, including the CSV re-export.
func TestInputRendersExportedRound(t *testing.T) {
	round, err := core.RunRound(core.Scenario{
		Machine:    machine.SMP2(),
		Victim:     victim.NewVi(),
		Attacker:   attack.NewV1(),
		UseSyscall: "chown",
		FileSize:   100 << 10,
		Seed:       9001,
		Trace:      true,
	})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	in := filepath.Join(dir, "round.jsonl")
	f, err := os.Create(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteJSONL(f, round.Events, trace.Filter{}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	csv := filepath.Join(dir, "round.csv")
	if err := run([]string{"-input", in, "-width", "80", "-csv", csv}); err != nil {
		t.Fatalf("rendering a valid export: %v", err)
	}
	data, err := os.ReadFile(csv)
	if err != nil {
		t.Fatalf("CSV re-export missing: %v", err)
	}
	if lines := strings.Count(string(data), "\n"); lines < len(round.Events) {
		t.Errorf("CSV re-export has %d lines for %d events", lines, len(round.Events))
	}
}
