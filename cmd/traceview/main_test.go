package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tocttou/internal/attack"
	"tocttou/internal/core"
	"tocttou/internal/machine"
	"tocttou/internal/trace"
	"tocttou/internal/victim"
)

// TestFlagValidationAtParseTime pins the convention that every bad flag
// value is rejected before any round runs: each invocation here must fail,
// and fail fast (a lazily validated -want would first burn 512 rounds).
func TestFlagValidationAtParseTime(t *testing.T) {
	cases := []struct {
		args []string
		want string
	}{
		{[]string{"-machine", "nope"}, "unknown machine"},
		{[]string{"-victim", "nope"}, "unknown victim"},
		{[]string{"-attacker", "nope"}, "unknown attacker"},
		{[]string{"-want", "maybe"}, "unknown -want"},
		{[]string{"-width", "0"}, "-width must be positive"},
		{[]string{"-size", "-3"}, "-size must be a positive"},
		{[]string{"-input", "x.jsonl", "-machine", "up"}, "only apply when running a live round"},
		{[]string{"-input", "x.jsonl", "-want", "success", "-seed", "9"}, "only apply when running a live round"},
	}
	for _, tc := range cases {
		err := run(tc.args)
		if err == nil {
			t.Errorf("run(%v): expected an error, got none", tc.args)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("run(%v) = %q, want it to mention %q", tc.args, err, tc.want)
		}
	}
}

// TestInputErrorsAreFatal pins the non-zero-exit contract for -input: an
// unreadable file, a malformed line, and an unknown event kind are all
// errors (main turns any run() error into exit status 1). Non-zero exit is
// reserved for genuinely malformed input — valid-but-empty exports are
// covered by TestInputDegenerateButValid.
func TestInputErrorsAreFatal(t *testing.T) {
	dir := t.TempDir()

	if err := run([]string{"-input", filepath.Join(dir, "absent.jsonl")}); err == nil {
		t.Error("unreadable -input file: expected an error, got none")
	}

	cases := []struct {
		name    string
		content string
		want    string
	}{
		{"not json", "{\"t_ns\":0,\"kind\":\"spawn\"}\nnot json at all\n", "line 2"},
		{"unknown kind", "{\"t_ns\":0,\"kind\":\"warp-core-breach\"}\n", "unknown event kind"},
		{"truncated object", "{\"t_ns\":0,\"kind\":\"spawn\"\n", "line 1"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(dir, "bad.jsonl")
			if err := os.WriteFile(path, []byte(tc.content), 0o644); err != nil {
				t.Fatal(err)
			}
			err := run([]string{"-input", path})
			if err == nil {
				t.Fatal("malformed -input JSONL: expected an error, got none")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestInputDegenerateButValid pins the other side of that contract: an
// export that parses but has nothing (or nothing span-shaped) to draw —
// zero events, or only point-like EvChoice/EvFault records — renders a
// clean report with a nil error, never a hard failure.
func TestInputDegenerateButValid(t *testing.T) {
	cases := []struct {
		name    string
		content string
		want    []string
	}{
		{"empty file", "", []string{"0 events", "nothing to render"}},
		{"blank lines only", "\n\n\n", []string{"0 events", "nothing to render"}},
		{"choice events only",
			"{\"t_ns\":0,\"kind\":\"choice\",\"label\":\"dispatch\",\"arg\":1}\n" +
				"{\"t_ns\":0,\"kind\":\"choice\",\"label\":\"stall\"}\n",
			[]string{"2 events", "timeline omitted"}},
		{"fault events only",
			"{\"t_ns\":0,\"kind\":\"fault\",\"pid\":3,\"label\":\"errno\",\"arg\":5}\n",
			[]string{"1 events", "timeline omitted"}},
		{"choice and fault mixed",
			"{\"t_ns\":0,\"kind\":\"choice\",\"label\":\"dispatch\",\"arg\":2}\n" +
				"{\"t_ns\":1500,\"kind\":\"fault\",\"pid\":2,\"label\":\"kill\"}\n",
			[]string{"2 events"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "trace.jsonl")
			if err := os.WriteFile(path, []byte(tc.content), 0o644); err != nil {
				t.Fatal(err)
			}
			out := captureStdout(t, func() {
				if err := run([]string{"-input", path}); err != nil {
					t.Errorf("valid degenerate input rejected: %v", err)
				}
			})
			for _, want := range tc.want {
				if !strings.Contains(out, want) {
					t.Errorf("output missing %q:\n%s", want, out)
				}
			}
		})
	}
}

// captureStdout runs fn with os.Stdout redirected into a pipe and returns
// everything it printed.
func captureStdout(t *testing.T, fn func()) string {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stdout
	os.Stdout = w
	defer func() { os.Stdout = old }()
	done := make(chan string)
	go func() {
		var sb strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := r.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				break
			}
		}
		done <- sb.String()
	}()
	fn()
	w.Close()
	return <-done
}

// TestInputRendersExportedRound round-trips a real traced round through the
// JSONL export and back through -input, including the CSV re-export.
func TestInputRendersExportedRound(t *testing.T) {
	round, err := core.RunRound(core.Scenario{
		Machine:    machine.SMP2(),
		Victim:     victim.NewVi(),
		Attacker:   attack.NewV1(),
		UseSyscall: "chown",
		FileSize:   100 << 10,
		Seed:       9001,
		Trace:      true,
	})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	in := filepath.Join(dir, "round.jsonl")
	f, err := os.Create(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteJSONL(f, round.Events, trace.Filter{}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	csv := filepath.Join(dir, "round.csv")
	if err := run([]string{"-input", in, "-width", "80", "-csv", csv}); err != nil {
		t.Fatalf("rendering a valid export: %v", err)
	}
	data, err := os.ReadFile(csv)
	if err != nil {
		t.Fatalf("CSV re-export missing: %v", err)
	}
	if lines := strings.Count(string(data), "\n"); lines < len(round.Events) {
		t.Errorf("CSV re-export has %d lines for %d events", lines, len(round.Events))
	}
}
