// Command traceview runs a single traced attack round and renders its
// event timeline (in the style of the paper's Figures 8 and 10), with an
// optional full-event CSV dump for external analysis.
//
// Usage:
//
//	traceview -machine smp -victim gedit -attacker v1 -size 2 -seed 7
//	traceview -machine mc -victim gedit -attacker v2 -want success
//	traceview -machine smp -victim vi -size 100 -csv events.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"tocttou/internal/attack"
	"tocttou/internal/core"
	"tocttou/internal/machine"
	"tocttou/internal/prog"
	"tocttou/internal/trace"
	"tocttou/internal/victim"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintf(os.Stderr, "traceview: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fl := flag.NewFlagSet("traceview", flag.ContinueOnError)
	machineName := fl.String("machine", "smp", "machine profile: up, smp, multicore")
	victimName := fl.String("victim", "gedit", "victim: vi, gedit, rpm")
	attackerName := fl.String("attacker", "v1", "attacker: v1, v2, pipelined, idle")
	sizeKB := fl.Int64("size", 2, "file size in KB")
	seed := fl.Int64("seed", 7, "round seed")
	want := fl.String("want", "any", "search seeds for an outcome: any, success, failure")
	csvPath := fl.String("csv", "", "write the full event trace as CSV to this file")
	width := fl.Int("width", 100, "timeline width in columns")
	if err := fl.Parse(args); err != nil {
		return err
	}

	m, ok := machine.ByName(*machineName)
	if !ok {
		return fmt.Errorf("unknown machine %q", *machineName)
	}
	var vict prog.Program
	use := "chown"
	switch *victimName {
	case "vi":
		vict = victim.NewVi()
	case "gedit":
		vict = victim.NewGedit()
		use = "chmod"
	case "rpm":
		vict = victim.NewAlwaysSuspended()
	default:
		return fmt.Errorf("unknown victim %q", *victimName)
	}
	var att prog.Program
	switch *attackerName {
	case "v1":
		att = attack.NewV1()
	case "v2":
		att = attack.NewV2()
	case "pipelined":
		att = attack.NewPipelined()
	case "idle":
		att = attack.Idle{}
	default:
		return fmt.Errorf("unknown attacker %q", *attackerName)
	}

	sc := core.Scenario{
		Machine: m, Victim: vict, Attacker: att,
		UseSyscall: use, FileSize: *sizeKB << 10, Seed: *seed, Trace: true,
	}

	round, err := findWanted(sc, *want)
	if err != nil {
		return err
	}

	fmt.Printf("round: machine=%s victim=%s attacker=%s size=%dKB seed=%d\n",
		m.Name, vict.Name(), att.Name(), *sizeKB, sc.Seed)
	fmt.Printf("outcome: success=%v window=%v detected=%v L=%.1fµs D=%.1fµs\n\n",
		round.Success, round.WindowOK, round.LD.Detected,
		round.LD.Lmicros(), round.LD.Dmicros())

	log := trace.New(round.Events)
	lanes := trace.BuildTimeline(log, map[int32]string{
		round.VictimPID:   vict.Name(),
		round.AttackerPID: "attacker",
	})
	from, to := round.LD.T1.Add(-40*1000), round.LD.T1.Add(120*1000)
	if !round.LD.WindowFound {
		from, to = 0, round.End
	}
	fmt.Print(trace.RenderASCII(lanes, from, to, *width))

	fmt.Println("\nper-thread activity over the whole round:")
	fmt.Print(trace.RenderSummaries(trace.Summarize(log), map[int32]string{
		round.VictimPID:   vict.Name(),
		round.AttackerPID: "attacker",
	}))

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := trace.WriteCSV(f, round.Events); err != nil {
			return err
		}
		fmt.Printf("\nwrote %d events to %s\n", len(round.Events), *csvPath)
	}
	return nil
}

func findWanted(sc core.Scenario, want string) (core.Round, error) {
	for i := 0; i < 512; i++ {
		round, err := core.RunRound(sc)
		if err != nil {
			return core.Round{}, err
		}
		switch want {
		case "any":
			return round, nil
		case "success":
			if round.Success {
				return round, nil
			}
		case "failure":
			if !round.Success && round.LD.Detected {
				return round, nil
			}
		default:
			return core.Round{}, fmt.Errorf("unknown -want %q", want)
		}
		sc.Seed += 7919
	}
	return core.Round{}, fmt.Errorf("no %s round found in 512 seeds", want)
}
