// Command traceview runs a single traced attack round and renders its
// event timeline (in the style of the paper's Figures 8 and 10), with an
// optional full-event CSV dump for external analysis. It can also render a
// previously exported JSONL trace (tocttou -trace-out) instead of running
// a fresh round.
//
// Usage:
//
//	traceview -machine smp -victim gedit -attacker v1 -size 2 -seed 7
//	traceview -machine mc -victim gedit -attacker v2 -want success
//	traceview -machine smp -victim vi -size 100 -csv events.csv
//	traceview -input trace.jsonl [-width 120] [-csv events.csv]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"tocttou/internal/attack"
	"tocttou/internal/core"
	"tocttou/internal/machine"
	"tocttou/internal/prog"
	"tocttou/internal/sim"
	"tocttou/internal/trace"
	"tocttou/internal/victim"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintf(os.Stderr, "traceview: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fl := flag.NewFlagSet("traceview", flag.ContinueOnError)
	machineName := fl.String("machine", "smp", "machine profile: up, smp, multicore")
	victimName := fl.String("victim", "gedit", "victim: vi, gedit, rpm")
	attackerName := fl.String("attacker", "v1", "attacker: v1, v2, pipelined, idle")
	sizeKB := fl.Int64("size", 2, "file size in KB")
	seed := fl.Int64("seed", 7, "round seed")
	want := fl.String("want", "any", "search seeds for an outcome: any, success, failure")
	csvPath := fl.String("csv", "", "write the full event trace as CSV to this file")
	width := fl.Int("width", 100, "timeline width in columns")
	input := fl.String("input", "", "render a previously exported JSONL trace (tocttou -trace-out) instead of running a round")
	if err := fl.Parse(args); err != nil {
		return err
	}

	// Every flag is validated here, before any round runs or any file is
	// opened, so a bad invocation fails fast with a non-zero exit instead
	// of surfacing mid-run (or, for -want, after 512 wasted rounds).
	if *width <= 0 {
		return fmt.Errorf("-width must be positive (got %d)", *width)
	}
	if *sizeKB <= 0 {
		return fmt.Errorf("-size must be a positive KB count (got %d)", *sizeKB)
	}
	switch *want {
	case "any", "success", "failure":
	default:
		return fmt.Errorf("unknown -want %q (have any, success, failure)", *want)
	}
	m, ok := machine.ByName(*machineName)
	if !ok {
		return fmt.Errorf("unknown machine %q", *machineName)
	}
	var vict prog.Program
	use := "chown"
	switch *victimName {
	case "vi":
		vict = victim.NewVi()
	case "gedit":
		vict = victim.NewGedit()
		use = "chmod"
	case "rpm":
		vict = victim.NewAlwaysSuspended()
	default:
		return fmt.Errorf("unknown victim %q", *victimName)
	}
	var att prog.Program
	switch *attackerName {
	case "v1":
		att = attack.NewV1()
	case "v2":
		att = attack.NewV2()
	case "pipelined":
		att = attack.NewPipelined()
	case "idle":
		att = attack.Idle{}
	default:
		return fmt.Errorf("unknown attacker %q", *attackerName)
	}

	if *input != "" {
		var conflicts []string
		fl.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "machine", "victim", "attacker", "size", "seed", "want":
				conflicts = append(conflicts, "-"+f.Name)
			}
		})
		if len(conflicts) > 0 {
			return fmt.Errorf("%s only apply when running a live round; drop them or drop -input",
				strings.Join(conflicts, ", "))
		}
		return renderInput(*input, *width, *csvPath)
	}

	sc := core.Scenario{
		Machine: m, Victim: vict, Attacker: att,
		UseSyscall: use, FileSize: *sizeKB << 10, Seed: *seed, Trace: true,
	}

	round, err := findWanted(sc, *want)
	if err != nil {
		return err
	}

	fmt.Printf("round: machine=%s victim=%s attacker=%s size=%dKB seed=%d\n",
		m.Name, vict.Name(), att.Name(), *sizeKB, sc.Seed)
	fmt.Printf("outcome: success=%v window=%v detected=%v L=%.1fµs D=%.1fµs\n\n",
		round.Success, round.WindowOK, round.LD.Detected,
		round.LD.Lmicros(), round.LD.Dmicros())

	log := trace.New(round.Events)
	lanes := trace.BuildTimeline(log, map[int32]string{
		round.VictimPID:   vict.Name(),
		round.AttackerPID: "attacker",
	})
	from, to := round.LD.T1.Add(-40*1000), round.LD.T1.Add(120*1000)
	if !round.LD.WindowFound {
		from, to = 0, round.End
	}
	fmt.Print(trace.RenderASCII(lanes, from, to, *width))

	fmt.Println("\nper-thread activity over the whole round:")
	fmt.Print(trace.RenderSummaries(trace.Summarize(log), map[int32]string{
		round.VictimPID:   vict.Name(),
		round.AttackerPID: "attacker",
	}))

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := trace.WriteCSV(f, round.Events); err != nil {
			return err
		}
		fmt.Printf("\nwrote %d events to %s\n", len(round.Events), *csvPath)
	}
	return nil
}

// renderInput renders a JSONL export instead of running a round. An
// unreadable file or malformed line is a hard error, so scripted pipelines
// see a non-zero exit rather than a partial timeline — but an export that
// parses and merely has nothing to draw (zero events, or only point-like
// events such as choices and faults with no time span) is valid input and
// renders a clean report with exit 0. Process display names come from the
// trace's spawn events; PIDs whose spawns were filtered out of the export
// fall back to "pid<N>".
func renderInput(path string, width int, csvPath string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	events, err := trace.ReadJSONL(f)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	labels := make(map[int32]string)
	var end sim.Time
	for _, e := range events {
		if e.T > end {
			end = e.T
		}
		if e.Kind == sim.EvSpawn && e.Label != "" {
			if _, ok := labels[e.PID]; !ok {
				labels[e.PID] = e.Label
			}
		}
	}
	for _, e := range events {
		if _, ok := labels[e.PID]; !ok && e.PID > 0 {
			labels[e.PID] = fmt.Sprintf("pid%d", e.PID)
		}
	}

	fmt.Printf("input: %s (%d events, %.1fms span)\n\n", path, len(events), float64(end)/1e6)
	if len(events) == 0 {
		fmt.Println("(no events: nothing to render)")
	} else {
		log := trace.New(events)
		timeline := trace.RenderASCII(trace.BuildTimeline(log, labels), 0, end, width)
		if timeline == "" {
			// Point-like events (choices, faults) at a single instant give
			// the timeline no span; the summaries below still apply.
			fmt.Println("(no time span: timeline omitted)")
		} else {
			fmt.Print(timeline)
		}
		fmt.Println("\nper-thread activity over the whole trace:")
		fmt.Print(trace.RenderSummaries(trace.Summarize(log), labels))
	}

	if csvPath != "" {
		out, err := os.Create(csvPath)
		if err != nil {
			return err
		}
		defer out.Close()
		if err := trace.WriteCSV(out, events); err != nil {
			return err
		}
		fmt.Printf("\nwrote %d events to %s\n", len(events), csvPath)
	}
	return nil
}

func findWanted(sc core.Scenario, want string) (core.Round, error) {
	for i := 0; i < 512; i++ {
		round, err := core.RunRound(sc)
		if err != nil {
			return core.Round{}, err
		}
		switch want {
		case "any":
			return round, nil
		case "success":
			if round.Success {
				return round, nil
			}
		case "failure":
			if !round.Success && round.LD.Detected {
				return round, nil
			}
		default:
			return core.Round{}, fmt.Errorf("unknown -want %q", want)
		}
		sc.Seed += 7919
	}
	return core.Round{}, fmt.Errorf("no %s round found in 512 seeds", want)
}
