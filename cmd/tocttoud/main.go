// Command tocttoud serves campaigns over HTTP: clients submit the same
// declarative scenario files `tocttou -scenario` runs, the daemon shards
// their sweep points across a bounded worker pool, and every committed
// point streams to watchers as NDJSON. Jobs are durable — a killed and
// restarted daemon resumes in-flight campaigns bit-identically from
// their checkpoints — and identical re-submissions are cache hits.
//
// Usage:
//
//	tocttoud -listen 127.0.0.1:8080 -data ./tocttoud-data [-max-jobs 2]
//	tocttoud -listen 127.0.0.1:0 -addr-file addr.txt   (scripts learn the port)
//	tocttoud -workers 4                                (supervised worker fleet)
//
// With -workers N > 0 each campaign's points execute in a fleet of N
// supervised subprocesses (the daemon re-executes itself with -worker):
// a crashing or stalling point costs one worker process and a lease
// requeue, never the daemon. -heartbeat-interval, -lease-timeout, and
// -max-point-retries tune the supervision.
//
// SIGTERM or SIGINT drains gracefully: new submissions get 503, running
// sweeps stop at the next point boundary with their checkpoints flushed,
// worker fleets are killed and reaped (no orphans), and interrupted jobs
// resume on the next start.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"tocttou/internal/campaignd"
	"tocttou/internal/workerpool"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintf(os.Stderr, "tocttoud: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fl := flag.NewFlagSet("tocttoud", flag.ContinueOnError)
	listen := fl.String("listen", "127.0.0.1:8080", "address to serve the campaign API on")
	dataDir := fl.String("data", "tocttoud-data", "durability root: specs, checkpoints, event logs, reports")
	maxJobs := fl.Int("max-jobs", 0, "max concurrently running campaigns (0 = default 2)")
	addrFile := fl.String("addr-file", "", "write the bound address to this file once listening (useful with -listen :0)")
	worker := fl.Bool("worker", false, "run as a fleet worker over stdin/stdout (internal; spawned by -workers)")
	workers := fl.Int("workers", 0, "execute campaigns in a supervised fleet of this many worker subprocesses (0 = in-process)")
	heartbeat := fl.Duration("heartbeat-interval", 100*time.Millisecond, "worker heartbeat pacing (fleet mode)")
	leaseTimeout := fl.Duration("lease-timeout", 10*time.Second, "kill a worker silent for this long and requeue its lease (fleet mode)")
	maxRetries := fl.Int("max-point-retries", 3, "worker kills one point may cause before it is quarantined (fleet mode)")
	if err := fl.Parse(args); err != nil {
		return err
	}
	if fl.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %v", fl.Args())
	}
	if *worker {
		return workerpool.Serve(os.Stdin, os.Stdout)
	}
	if *maxJobs < 0 {
		return fmt.Errorf("-max-jobs must be >= 0, got %d", *maxJobs)
	}
	if *workers < 0 {
		return fmt.Errorf("-workers must be >= 0, got %d", *workers)
	}
	if *heartbeat <= 0 {
		return fmt.Errorf("-heartbeat-interval must be > 0, got %v", *heartbeat)
	}
	if *leaseTimeout <= 0 {
		return fmt.Errorf("-lease-timeout must be > 0, got %v", *leaseTimeout)
	}
	if *leaseTimeout <= *heartbeat {
		return fmt.Errorf("-lease-timeout %v must exceed -heartbeat-interval %v", *leaseTimeout, *heartbeat)
	}
	if *maxRetries <= 0 {
		return fmt.Errorf("-max-point-retries must be > 0, got %d", *maxRetries)
	}
	// Fail fast on a typoed chaos schedule: the same parse a worker would
	// do at spawn time, surfaced at daemon startup instead.
	if v := os.Getenv("TOCTTOU_CHAOS"); v != "" {
		if _, err := workerpool.ParseSchedule(v); err != nil {
			return fmt.Errorf("TOCTTOU_CHAOS: %w", err)
		}
	}

	logger := log.New(os.Stderr, "tocttoud: ", log.LstdFlags|log.Lmicroseconds)
	cfg := campaignd.Config{
		DataDir:       *dataDir,
		MaxActiveJobs: *maxJobs,
		Logf:          logger.Printf,
	}
	if *workers > 0 {
		exe, err := os.Executable()
		if err != nil {
			return fmt.Errorf("-workers: locating own binary: %w", err)
		}
		cfg.Workers = *workers
		cfg.WorkerCommand = []string{exe, "-worker"}
		cfg.HeartbeatInterval = *heartbeat
		cfg.LeaseTimeout = *leaseTimeout
		cfg.MaxPointRetries = *maxRetries
	}
	srv, err := campaignd.New(cfg)
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	logger.Printf("listening on %s (data %s)", ln.Addr(), *dataDir)
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(ln.Addr().String()+"\n"), 0o644); err != nil {
			ln.Close()
			return fmt.Errorf("-addr-file: %w", err)
		}
	}

	hs := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	select {
	case sig := <-sigc:
		logger.Printf("received %v; draining (in-flight points finish committing, checkpoints flush)", sig)
		srv.Drain()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			logger.Printf("shutdown: %v", err)
		}
		logger.Printf("drained; interrupted campaigns resume on the next start")
		return nil
	case err := <-errc:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	}
}
