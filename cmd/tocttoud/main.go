// Command tocttoud serves campaigns over HTTP: clients submit the same
// declarative scenario files `tocttou -scenario` runs, the daemon shards
// their sweep points across a bounded worker pool, and every committed
// point streams to watchers as NDJSON. Jobs are durable — a killed and
// restarted daemon resumes in-flight campaigns bit-identically from
// their checkpoints — and identical re-submissions are cache hits.
//
// Usage:
//
//	tocttoud -listen 127.0.0.1:8080 -data ./tocttoud-data [-max-jobs 2]
//	tocttoud -listen 127.0.0.1:0 -addr-file addr.txt   (scripts learn the port)
//
// SIGTERM or SIGINT drains gracefully: new submissions get 503, running
// sweeps stop at the next point boundary with their checkpoints flushed,
// and interrupted jobs resume on the next start.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"tocttou/internal/campaignd"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintf(os.Stderr, "tocttoud: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fl := flag.NewFlagSet("tocttoud", flag.ContinueOnError)
	listen := fl.String("listen", "127.0.0.1:8080", "address to serve the campaign API on")
	dataDir := fl.String("data", "tocttoud-data", "durability root: specs, checkpoints, event logs, reports")
	maxJobs := fl.Int("max-jobs", 0, "max concurrently running campaigns (0 = default 2)")
	addrFile := fl.String("addr-file", "", "write the bound address to this file once listening (useful with -listen :0)")
	if err := fl.Parse(args); err != nil {
		return err
	}
	if fl.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %v", fl.Args())
	}
	if *maxJobs < 0 {
		return fmt.Errorf("-max-jobs must be >= 0, got %d", *maxJobs)
	}

	logger := log.New(os.Stderr, "tocttoud: ", log.LstdFlags|log.Lmicroseconds)
	srv, err := campaignd.New(campaignd.Config{
		DataDir:       *dataDir,
		MaxActiveJobs: *maxJobs,
		Logf:          logger.Printf,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	logger.Printf("listening on %s (data %s)", ln.Addr(), *dataDir)
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(ln.Addr().String()+"\n"), 0o644); err != nil {
			ln.Close()
			return fmt.Errorf("-addr-file: %w", err)
		}
	}

	hs := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	select {
	case sig := <-sigc:
		logger.Printf("received %v; draining (in-flight points finish committing, checkpoints flush)", sig)
		srv.Drain()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			logger.Printf("shutdown: %v", err)
		}
		logger.Printf("drained; interrupted campaigns resume on the next start")
		return nil
	case err := <-errc:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	}
}
