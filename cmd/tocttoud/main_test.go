package main

import (
	"strings"
	"testing"
)

// The fleet flags are validated at parse time, before the daemon binds
// its listener or touches the data directory; every rejected value must
// name the offending flag so the error is actionable.
func TestRunRejectsBadFlags(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{
			"negative max-jobs",
			[]string{"-max-jobs", "-1"},
			"-max-jobs",
		},
		{
			"negative workers",
			[]string{"-workers", "-2"},
			"-workers must be >= 0",
		},
		{
			"zero heartbeat",
			[]string{"-workers", "2", "-heartbeat-interval", "0s"},
			"-heartbeat-interval must be > 0",
		},
		{
			"zero lease timeout",
			[]string{"-workers", "2", "-lease-timeout", "0s"},
			"-lease-timeout must be > 0",
		},
		{
			"lease timeout not exceeding heartbeat",
			[]string{"-workers", "2", "-heartbeat-interval", "1s", "-lease-timeout", "1s"},
			"must exceed -heartbeat-interval",
		},
		{
			"zero point retries",
			[]string{"-workers", "2", "-max-point-retries", "0"},
			"-max-point-retries must be > 0",
		},
		{
			"fleet flags validated without workers too",
			[]string{"-max-point-retries", "-3"},
			"-max-point-retries must be > 0",
		},
		{
			"positional arguments",
			[]string{"extra"},
			"unexpected arguments",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := run(c.args)
			if err == nil {
				t.Fatalf("run(%v) succeeded, want error", c.args)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("run(%v) = %q, want it to mention %q", c.args, err, c.want)
			}
		})
	}
}

// A malformed TOCTTOU_CHAOS schedule fails the daemon at startup with
// the grammar error, instead of failing every worker it later spawns.
func TestRunRejectsBadChaosSchedule(t *testing.T) {
	t.Setenv("TOCTTOU_CHAOS", "explode@1")
	err := run([]string{"-workers", "2", "-data", t.TempDir(), "-listen", "127.0.0.1:0"})
	if err == nil || !strings.Contains(err.Error(), "TOCTTOU_CHAOS") || !strings.Contains(err.Error(), "unknown action") {
		t.Fatalf("run with bad TOCTTOU_CHAOS = %v, want a schedule parse error", err)
	}
}
