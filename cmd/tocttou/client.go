package main

// Client verbs for a campaignd server (see cmd/tocttoud). The watch
// verb's contract is the service's headline correctness property: the
// report it writes to stdout is byte-identical to running the same
// scenario file locally — progress chatter goes to stderr so stdout
// diffs clean against golden snapshots.

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"tocttou/internal/campaignd"
)

func clientRun(server, submit, watch string, jobs bool) error {
	c := &campaignd.Client{Server: server}
	switch {
	case submit != "":
		return clientSubmit(c, submit)
	case watch != "":
		return clientWatch(c, watch)
	case jobs:
		return clientJobs(c)
	}
	return fmt.Errorf("no client verb selected")
}

// clientSubmit posts a scenario file and prints the job, id first, so
// scripts can capture it: `ID=$(tocttou -server ... -submit f | awk '{print $1}')`.
func clientSubmit(c *campaignd.Client, path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	info, err := c.Submit(filepath.Base(path), data)
	if err != nil {
		return err
	}
	extra := ""
	if info.Cached {
		extra = ", cached"
	}
	fmt.Printf("%s %s %s (%d points%s)\n", info.ID, info.State, info.Name, info.Points, extra)
	return nil
}

// clientWatch follows a campaign to completion: per-point progress on
// stderr, the final report verbatim on stdout. A failed campaign or a
// failed spec assertion is the process's error (non-zero exit), exactly
// as a local -scenario run behaves.
func clientWatch(c *campaignd.Client, id string) error {
	end, err := c.Watch(context.Background(), id, func(ev campaignd.PointEvent) {
		fmt.Fprintf(os.Stderr, "point %d %s: %d/%d successes (%.1f%%)\n",
			ev.Point, ev.Label, ev.Successes, ev.Rounds, ev.Rate*100)
	})
	if err != nil {
		return err
	}
	if end.State != campaignd.StateDone {
		return fmt.Errorf("campaign %s %s: %s", id, end.State, end.Error)
	}
	report, err := c.Report(id)
	if err != nil {
		return err
	}
	if _, err := os.Stdout.Write(report); err != nil {
		return err
	}
	if end.AssertionFailure != "" {
		return errors.New(end.AssertionFailure)
	}
	return nil
}

func clientJobs(c *campaignd.Client) error {
	jobs, err := c.Jobs()
	if err != nil {
		return err
	}
	if len(jobs) == 0 {
		fmt.Println("no campaigns")
		return nil
	}
	fmt.Printf("%-16s %-11s %9s  %-20s %s\n", "ID", "STATE", "POINTS", "NAME", "SUBMITTED")
	for _, j := range jobs {
		fmt.Printf("%-16s %-11s %4d/%-4d  %-20s %s\n",
			j.ID, j.State, j.Committed, j.Points, j.Name, j.SubmittedAt)
	}
	return nil
}
