// Command tocttou runs the paper's experiments on the simulated testbeds.
//
// Usage:
//
//	tocttou -list
//	tocttou -experiment fig6 [-rounds N] [-seed S] [-sizes 100,500,1000] [-metrics]
//	tocttou -experiment all [-adaptive [-halfwidth 0.02] [-minrounds 50]]
//	tocttou -experiment fig6,headline,eq1-exact,faultsweep -golden testdata/golden
//	tocttou -experiment faultsweep [-fault-rates 0,0.01,0.2] [-fault-seed 9973]
//	tocttou -experiment headline -checkpoint headline.ckpt   (crash-safe; rerun resumes)
//	tocttou -scenario examples/scenarios/fig6.yaml [-golden dir] [-checkpoint file.ckpt]
//	tocttou -explore [-sizes 100,500] [-explore-phases 24] [-preemption-bound 1] [-witness-out prefix]
//	tocttou -trace-out trace.jsonl [-trace-scenario vi-smp] [-trace-kinds enter,exit] [-trace-pid 2] [-trace-path /tmp/x]
//	tocttou -bench-baseline [-bench-out BENCH_1.json]
//	tocttou -sweep [-adaptive] [-halfwidth 0.02] [-sweep-out BENCH_2.json]
//	tocttou -bench-guard [-bench-against BENCH_2.json] [-bench-tolerance 0.10]
//	tocttou -bench-compare BENCH_3.json,BENCH_4.json [-strict [-alloc-tolerance 0.10]]
//
// Each experiment renders the corresponding table or figure of
// "Multiprocessors May Reduce System Dependability under File-Based Race
// Condition Attacks" (DSN 2007) from freshly simulated campaigns.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"tocttou/internal/attack"
	"tocttou/internal/core"
	"tocttou/internal/experiments"
	"tocttou/internal/machine"
	"tocttou/internal/prog"
	"tocttou/internal/scenario"
	"tocttou/internal/sim"
	"tocttou/internal/trace"
	"tocttou/internal/victim"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintf(os.Stderr, "tocttou: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fl := flag.NewFlagSet("tocttou", flag.ContinueOnError)
	list := fl.Bool("list", false, "list available experiments")
	name := fl.String("experiment", "", "experiment to run (or 'all')")
	rounds := fl.Int("rounds", 0, "rounds per campaign (0 = experiment default)")
	seed := fl.Int64("seed", 0, "base seed (0 = fixed default)")
	sizesArg := fl.String("sizes", "", "comma-separated file sizes in KB, where applicable")
	benchBase := fl.Bool("bench-baseline", false, "measure per-round campaign cost and write a machine-readable baseline")
	benchOut := fl.String("bench-out", "BENCH_1.json", "output path for -bench-baseline")
	sweep := fl.Bool("sweep", false, "benchmark the Fig 6 sweep (serial loop vs sweep scheduler) and write a machine-readable record")
	sweepOut := fl.String("sweep-out", "BENCH_2.json", "output path for -sweep")
	adaptive := fl.Bool("adaptive", false, "enable adaptive round budgets (sequential stopping at -halfwidth)")
	halfWidth := fl.Float64("halfwidth", 0.02, "target 95% Wilson half-width on the success rate for -adaptive")
	minRounds := fl.Int("minrounds", 0, "minimum rounds per point before -adaptive may stop it (0 = engine default)")
	showMetrics := fl.Bool("metrics", false, "append kernel counters and window/D/L histograms to supporting experiments")
	traceOut := fl.String("trace-out", "", "run one traced round and write its events as JSONL to this file")
	traceScen := fl.String("trace-scenario", "vi-smp", "scenario for -trace-out: vi-uni, vi-smp, gedit-v1, gedit-v2")
	traceKinds := fl.String("trace-kinds", "", "comma-separated event kinds to keep in -trace-out (default all)")
	tracePID := fl.Int("trace-pid", 0, "restrict -trace-out to one pid (0 = all)")
	tracePath := fl.String("trace-path", "", "restrict -trace-out to events on this exact path")
	benchGuard := fl.Bool("bench-guard", false, "re-time the Fig 6 sweep and fail if it regressed vs -bench-against")
	benchAgainst := fl.String("bench-against", "BENCH_2.json", "committed baseline record for -bench-guard")
	benchTol := fl.Float64("bench-tolerance", 0.10, "allowed fractional slowdown for -bench-guard")
	benchCmp := fl.String("bench-compare", "", "render a benchstat-style comparison of two committed sweep records: old.json,new.json")
	benchStrict := fl.Bool("strict", false, "with -bench-compare: also diff allocs/op and exit non-zero past -alloc-tolerance")
	allocTol := fl.Float64("alloc-tolerance", 0.10, "allowed fractional allocs/op growth for -bench-compare -strict")
	explore := fl.Bool("explore", false, "exhaustively enumerate the schedule space of fig6 uniprocessor points (-sizes) and report exact win probabilities")
	explorePhases := fl.Int("explore-phases", 0, "startup-phase slots for -explore (0 = engine default)")
	preemptionBound := fl.Int("preemption-bound", 0, "max injected background preemptions per explored round (0 = none)")
	witnessOut := fl.String("witness-out", "", "path prefix for -explore witness traces (<prefix>-<point>-win.jsonl / -lose.jsonl)")
	scenarioPath := fl.String("scenario", "", "run a declarative scenario file (YAML or JSON); exits non-zero on a malformed spec or a failed assertion")
	goldenDir := fl.String("golden", "", "write each -experiment rendering to <dir>/<name>.txt instead of stdout")
	checkpoint := fl.String("checkpoint", "", "crash-safe sweep checkpoint file for a single checkpointable -experiment; rerun with the same flags to resume")
	faultRates := fl.String("fault-rates", "", "comma-separated fault injection rates in [0,1] for the faultsweep experiment")
	faultSeed := fl.Int64("fault-seed", 0, "fault-plan seed for the faultsweep experiment (0 = fixed default)")
	cpuProfile := fl.String("cpuprofile", "", "write a CPU profile of the selected run to this file")
	memProfile := fl.String("memprofile", "", "write an end-of-run heap profile to this file")
	serverURL := fl.String("server", "", "campaignd base URL for the client verbs (-submit, -watch, -jobs)")
	submitPath := fl.String("submit", "", "submit a scenario file to -server and print the job (id first)")
	watchID := fl.String("watch", "", "follow a campaign on -server: progress streams to stderr, the completed report to stdout")
	jobsList := fl.Bool("jobs", false, "list the campaigns -server knows, in submission order")
	if err := fl.Parse(args); err != nil {
		return err
	}

	// Reject contradictory or out-of-range adaptive settings up front
	// instead of silently running with them.
	var halfWidthSet, minRoundsSet, explorePhasesSet, preemptionBoundSet, witnessOutSet bool
	var faultRatesSet, faultSeedSet, allocTolSet bool
	setFlags := make(map[string]bool)
	fl.Visit(func(f *flag.Flag) {
		setFlags[f.Name] = true
		switch f.Name {
		case "alloc-tolerance":
			allocTolSet = true
		case "halfwidth":
			halfWidthSet = true
		case "minrounds":
			minRoundsSet = true
		case "explore-phases":
			explorePhasesSet = true
		case "preemption-bound":
			preemptionBoundSet = true
		case "witness-out":
			witnessOutSet = true
		case "fault-rates":
			faultRatesSet = true
		case "fault-seed":
			faultSeedSet = true
		}
	})
	if halfWidthSet && !*adaptive {
		return fmt.Errorf("-halfwidth only applies with -adaptive; add -adaptive or drop -halfwidth")
	}
	if minRoundsSet && !*adaptive {
		return fmt.Errorf("-minrounds only applies with -adaptive; add -adaptive or drop -minrounds")
	}
	if explorePhasesSet && !*explore {
		return fmt.Errorf("-explore-phases only applies with -explore")
	}
	if preemptionBoundSet && !*explore {
		return fmt.Errorf("-preemption-bound only applies with -explore")
	}
	if witnessOutSet && !*explore {
		return fmt.Errorf("-witness-out only applies with -explore")
	}
	if *explorePhases < 0 {
		return fmt.Errorf("-explore-phases must be >= 0, got %d", *explorePhases)
	}
	if *preemptionBound < 0 {
		return fmt.Errorf("-preemption-bound must be >= 0, got %d", *preemptionBound)
	}
	if *goldenDir != "" && *name == "" && *scenarioPath == "" {
		return fmt.Errorf("-golden requires -experiment or -scenario (the runs to snapshot)")
	}
	// A scenario file carries its whole configuration, so every knob that
	// would override part of it is a contradiction, rejected at parse time.
	if *scenarioPath != "" {
		for _, conflicting := range []string{
			"experiment", "rounds", "seed", "sizes", "metrics",
			"adaptive", "halfwidth", "minrounds", "fault-rates", "fault-seed",
			"list", "explore", "bench-baseline", "sweep", "bench-guard",
			"bench-compare", "trace-out",
		} {
			if setFlags[conflicting] {
				return fmt.Errorf("-%s does not apply to -scenario runs (the scenario file carries the configuration)", conflicting)
			}
		}
	}
	// The client verbs talk to a campaignd server; every local-run flag is
	// a contradiction (the server owns the execution), rejected up front.
	clientVerbs := 0
	for _, set := range []bool{*submitPath != "", *watchID != "", *jobsList} {
		if set {
			clientVerbs++
		}
	}
	if clientVerbs > 0 || *serverURL != "" {
		if *serverURL == "" {
			return fmt.Errorf("-submit, -watch, and -jobs require -server <url>")
		}
		if clientVerbs == 0 {
			return fmt.Errorf("-server requires one of -submit, -watch, -jobs")
		}
		if clientVerbs > 1 {
			return fmt.Errorf("-submit, -watch, and -jobs are mutually exclusive (one verb per invocation)")
		}
		for name := range setFlags {
			switch name {
			case "server", "submit", "watch", "jobs":
			default:
				return fmt.Errorf("-%s does not apply to client-verb runs (the server owns the execution)", name)
			}
		}
		return clientRun(*serverURL, *submitPath, *watchID, *jobsList)
	}
	if *adaptive && (*halfWidth <= 0 || *halfWidth >= 1) {
		return fmt.Errorf("-halfwidth must be strictly between 0 and 1 (a success-rate half-width), got %v", *halfWidth)
	}
	if *minRounds < 0 {
		return fmt.Errorf("-minrounds must be >= 0, got %d", *minRounds)
	}
	if *benchTol <= 0 {
		return fmt.Errorf("-bench-tolerance must be > 0, got %v", *benchTol)
	}
	if *benchStrict && *benchCmp == "" {
		return fmt.Errorf("-strict only applies with -bench-compare")
	}
	if allocTolSet && !*benchStrict {
		return fmt.Errorf("-alloc-tolerance only applies with -bench-compare -strict")
	}
	if *allocTol <= 0 {
		return fmt.Errorf("-alloc-tolerance must be > 0, got %v", *allocTol)
	}

	// The fault/checkpoint flags bind to specific experiment selections;
	// reject mismatches at parse time like the adaptive flags above.
	names := splitNames(*name)
	if *checkpoint != "" && *scenarioPath == "" {
		if *benchBase || *sweep || *benchGuard || *traceOut != "" || *explore {
			return fmt.Errorf("-checkpoint only applies to -experiment and -scenario runs")
		}
		if len(names) != 1 || names[0] == "all" {
			return fmt.Errorf("-checkpoint requires exactly one -experiment name (each sweep maps to one checkpoint file)")
		}
		if !experiments.SupportsCheckpoint(names[0]) {
			return fmt.Errorf("-checkpoint is not supported by experiment %q (its result does not derive purely from sweep points)", names[0])
		}
	}
	if (faultRatesSet || faultSeedSet) && !containsName(names, "faultsweep") {
		return fmt.Errorf("-fault-rates and -fault-seed only apply to the faultsweep experiment")
	}
	var parsedRates []float64
	if faultRatesSet {
		for _, s := range strings.Split(*faultRates, ",") {
			r, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
			if err != nil {
				return fmt.Errorf("bad fault rate %q", s)
			}
			if r < 0 || r > 1 {
				return fmt.Errorf("-fault-rates entries must be in [0, 1], got %v", r)
			}
			parsedRates = append(parsedRates, r)
		}
		if len(parsedRates) == 0 {
			return fmt.Errorf("-fault-rates needs at least one rate")
		}
	}

	var sizes []int
	if *sizesArg != "" {
		for _, s := range strings.Split(*sizesArg, ",") {
			kb, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || kb <= 0 {
				return fmt.Errorf("bad size %q", s)
			}
			sizes = append(sizes, kb)
		}
	}

	// Profiling wraps whichever mode runs below. Both files are created at
	// parse time so an unwritable path fails the invocation up front (non-
	// zero exit) instead of after a long profiled run.
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return fmt.Errorf("-cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return fmt.Errorf("-cpuprofile: %w", err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			return fmt.Errorf("-memprofile: %w", err)
		}
		defer func() {
			runtime.GC() // settle allocations so the heap profile reflects live data
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "tocttou: -memprofile: %v\n", err)
			}
			f.Close()
		}()
	}

	if *benchBase {
		return benchBaseline(*benchOut)
	}
	if *sweep {
		return benchSweep(*sweepOut, *adaptive, *halfWidth, *minRounds)
	}
	if *benchGuard {
		return benchGuardRun(*benchAgainst, *benchTol)
	}
	if *benchCmp != "" {
		return benchCompare(*benchCmp, *benchStrict, *allocTol)
	}
	if *traceOut != "" {
		return traceExport(*traceOut, *traceScen, *seed, *traceKinds, *tracePID, *tracePath)
	}
	if *explore {
		return exploreRun(sizes, *seed, *explorePhases, *preemptionBound, *rounds, *witnessOut)
	}
	if *scenarioPath != "" {
		return scenarioRun(*scenarioPath, *goldenDir, *checkpoint)
	}

	if *list || *name == "" {
		fmt.Println("available experiments:")
		for _, n := range experiments.Names() {
			desc, _ := experiments.Describe(n)
			fmt.Printf("  %-9s %s\n", n, desc)
		}
		if *name == "" && !*list {
			return fmt.Errorf("no experiment selected (use -experiment <name> or -experiment all)")
		}
		return nil
	}

	opt := experiments.Options{Rounds: *rounds, Seed: *seed, Metrics: *showMetrics}
	if *adaptive {
		// Opt-in sequential stopping: sweep-based experiments stop each
		// point once its estimate is tight enough instead of running the
		// full fixed budget (results then depend on the committed length).
		opt.AdaptiveHalfWidth = *halfWidth
		opt.MinRounds = *minRounds
	}
	opt.Sizes = sizes
	opt.Checkpoint = *checkpoint
	opt.FaultRates = parsedRates
	opt.FaultSeed = *faultSeed

	if len(names) == 1 && names[0] == "all" {
		names = experiments.Names()
	}
	if *goldenDir != "" {
		if err := os.MkdirAll(*goldenDir, 0o755); err != nil {
			return err
		}
	}
	for _, n := range names {
		started := time.Now()
		res, err := experiments.Run(n, opt)
		if err != nil {
			return err
		}
		if *goldenDir != "" {
			// Golden snapshots carry the rendering only — no wall-time
			// header, so reruns diff clean.
			path := *goldenDir + "/" + n + ".txt"
			f, err := os.Create(path)
			if err != nil {
				return err
			}
			if err := res.Render(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", path)
			continue
		}
		fmt.Printf("==== %s (%.1fs) ====\n", n, time.Since(started).Seconds())
		if err := res.Render(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
	}
	return nil
}

// splitNames splits the -experiment list, trimming whitespace. An empty
// selection yields nil.
func splitNames(arg string) []string {
	if arg == "" {
		return nil
	}
	names := strings.Split(arg, ",")
	for i, n := range names {
		names[i] = strings.TrimSpace(n)
	}
	return names
}

func containsName(names []string, want string) bool {
	for _, n := range names {
		if n == want || n == "all" {
			return true
		}
	}
	return false
}

// exploreRun exhaustively enumerates the schedule space of fig6-style
// uniprocessor vi points and prints each point's exact win probability
// next to its Monte Carlo cross-check. With a witness prefix it also
// exports the minimal winning and losing schedules as replayable JSONL
// traces.
func exploreRun(sizes []int, seed int64, phases, preemptionBound, mcRounds int, witnessPrefix string) error {
	if len(sizes) == 0 {
		sizes = []int{100, 500}
	}
	if seed == 0 {
		seed = 23003
	}
	opt := core.ExploreOptions{
		PhaseSlots:      phases,
		PreemptionBound: preemptionBound,
		MCRounds:        mcRounds,
	}
	m := machine.Uniprocessor()
	for i, kb := range sizes {
		sc := core.Scenario{
			Machine:    m,
			Victim:     victim.NewVi(),
			Attacker:   attack.NewV1(),
			UseSyscall: "chown",
			FileSize:   int64(kb) << 10,
			Seed:       seed + int64(i),
		}
		started := time.Now()
		res, err := core.ExploreCampaign(sc, opt)
		if err != nil {
			return fmt.Errorf("explore vi %dKB: %w", kb, err)
		}
		label := fmt.Sprintf("vi-%dkb-up", kb)
		fmt.Printf("%s: exact P(win) = %.6f — %d paths, %d choice points, %d merged, depth %d (%.1fs)\n",
			label, res.ExactProb(),
			res.Paths, res.ChoicePoints, res.Merged, res.MaxDepth,
			time.Since(started).Seconds())
		if res.MCRounds > 0 {
			lo, hi := res.MCInterval()
			verdict := "agrees"
			if !res.AgreesWithMC() {
				verdict = "DISAGREES"
			}
			fmt.Printf("%s: MC cross-check %.6f over %d rounds, 95%% CI [%.4f, %.4f] — %s\n",
				label, res.MC.Proportion().Rate(), res.MCRounds, lo, hi, verdict)
		}
		for _, w := range []struct {
			kind    string
			witness *core.ScheduleWitness
		}{{"win", res.Win}, {"lose", res.Lose}} {
			if w.witness == nil {
				fmt.Printf("%s: no %sning schedule exists\n", label, w.kind)
				continue
			}
			p, _ := w.witness.Prob.Float64()
			fmt.Printf("%s: minimal %s schedule: %d decision(s), P=%.6f\n",
				label, w.kind, len(w.witness.Script), p)
			if witnessPrefix == "" {
				continue
			}
			path := fmt.Sprintf("%s-%s-%s.jsonl", witnessPrefix, label, w.kind)
			if err := writeWitness(path, w.witness); err != nil {
				return err
			}
			fmt.Printf("%s: wrote %s (%d events)\n", label, path, len(w.witness.Round.Events))
		}
	}
	return nil
}

// writeWitness exports a witness round's traced events as JSONL. The
// embedded EvChoice records carry the schedule, so the file replays via
// trace.ReadJSONL + core.ScheduleFromEvents + core.ReplaySchedule.
func writeWitness(path string, w *core.ScheduleWitness) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	jw := trace.NewJSONLWriter(f, trace.Filter{})
	for _, e := range w.Round.Events {
		jw.Emit(e)
	}
	if err := jw.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("write %s: %w", path, err)
	}
	return f.Close()
}

// provenance records where and when a benchmark record was taken, so a
// committed BENCH_*.json can be traced back to the build and host that
// produced it. Every field is best-effort: a record taken outside a git
// checkout simply omits the commit.
type provenance struct {
	GitCommit string `json:"git_commit,omitempty"`
	Timestamp string `json:"timestamp"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	NumCPU    int    `json:"num_cpu"`
	Hostname  string `json:"hostname,omitempty"`
}

// scenarioRun executes a declarative scenario file end-to-end: parse-time
// validation (a malformed spec exits non-zero before any round runs), the
// sweep itself — through the crash-safe checkpoint runner when -checkpoint
// is set — rendering to stdout or a -golden snapshot, and finally the
// spec's assertions, whose first failure is the process's error.
func scenarioRun(path, goldenDir, checkpoint string) error {
	spec, err := scenario.Load(path)
	if err != nil {
		return err
	}
	started := time.Now()
	out, err := scenario.Run(spec, scenario.RunOptions{Checkpoint: checkpoint})
	if err != nil {
		return err
	}
	if goldenDir != "" {
		if err := os.MkdirAll(goldenDir, 0o755); err != nil {
			return err
		}
		// Golden snapshots carry the rendering only — no wall-time
		// header, so reruns diff clean.
		dst := goldenDir + "/" + spec.Name + ".txt"
		f, err := os.Create(dst)
		if err != nil {
			return err
		}
		if err := out.Render(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", dst)
	} else {
		fmt.Printf("==== scenario %s (%.1fs) ====\n", spec.Name, time.Since(started).Seconds())
		if err := out.Render(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
	}
	return out.CheckAssertions()
}

// captureProvenance gathers the current build/host identity.
func captureProvenance() provenance {
	p := provenance{
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
	}
	if out, err := exec.Command("git", "rev-parse", "HEAD").Output(); err == nil {
		p.GitCommit = strings.TrimSpace(string(out))
	}
	if h, err := os.Hostname(); err == nil {
		p.Hostname = h
	}
	return p
}

// benchRecord is the machine-readable perf baseline one -bench-baseline run
// emits, giving future changes a per-round cost trajectory to compare
// against (see DESIGN.md's Performance section for the workflow).
type benchRecord struct {
	Benchmark      string     `json:"benchmark"`
	Rounds         int        `json:"rounds"`
	NsPerRound     int64      `json:"ns_per_round"`
	AllocsPerRound int64      `json:"allocs_per_round"`
	BytesPerRound  int64      `json:"bytes_per_round"`
	SuccessRate    float64    `json:"success_rate"`
	GoVersion      string     `json:"go_version"`
	GOMAXPROCS     int        `json:"gomaxprocs"`
	Provenance     provenance `json:"provenance"`
}

// benchBaseline times a fixed vi/SMP campaign — the workload the paper's
// Figures 6–7 and Table 1 are built from — and writes {ns, allocs, bytes}
// per round to out.
func benchBaseline(out string) error {
	sc := core.Scenario{
		Machine:    machine.SMP2(),
		Victim:     victim.NewVi(),
		Attacker:   attack.NewV1(),
		UseSyscall: "chown",
		FileSize:   100 << 10,
		Seed:       7001,
	}
	const warmup, rounds = 200, 2000
	if _, err := core.RunCampaign(sc, warmup); err != nil {
		return fmt.Errorf("bench warmup: %w", err)
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	res, err := core.RunCampaign(sc, rounds)
	wall := time.Since(start)
	if err != nil {
		return fmt.Errorf("bench campaign: %w", err)
	}
	runtime.ReadMemStats(&after)
	rec := benchRecord{
		Benchmark:      "vi-smp2-100KB-campaign",
		Rounds:         rounds,
		NsPerRound:     wall.Nanoseconds() / rounds,
		AllocsPerRound: int64(after.Mallocs-before.Mallocs) / rounds,
		BytesPerRound:  int64(after.TotalAlloc-before.TotalAlloc) / rounds,
		SuccessRate:    res.Rate(),
		GoVersion:      runtime.Version(),
		GOMAXPROCS:     runtime.GOMAXPROCS(0),
		Provenance:     captureProvenance(),
	}
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("%s: %d ns/round, %d allocs/round, %d B/round (success %.1f%%)\n",
		out, rec.NsPerRound, rec.AllocsPerRound, rec.BytesPerRound, rec.SuccessRate*100)
	return nil
}

// traceScenario builds the traced round a -trace-out export runs. The
// scenarios mirror the experiment drivers' standard configurations.
func traceScenario(name string, seed int64) (core.Scenario, error) {
	if seed == 0 {
		seed = 9001
	}
	vi := func(m machine.Profile, kb int) core.Scenario {
		return core.Scenario{
			Machine:    m,
			Victim:     victim.NewVi(),
			Attacker:   attack.NewV1(),
			UseSyscall: "chown",
			FileSize:   int64(kb) << 10,
			Seed:       seed,
			Trace:      true,
		}
	}
	gedit := func(m machine.Profile, attacker prog.Program) core.Scenario {
		return core.Scenario{
			Machine:    m,
			Victim:     victim.NewGedit(),
			Attacker:   attacker,
			UseSyscall: "chmod",
			FileSize:   2 << 10,
			Seed:       seed,
			Trace:      true,
		}
	}
	switch name {
	case "vi-uni":
		return vi(machine.Uniprocessor(), 100), nil
	case "vi-smp":
		return vi(machine.SMP2(), 100), nil
	case "gedit-v1":
		return gedit(machine.SMP2(), attack.NewV1()), nil
	case "gedit-v2":
		return gedit(machine.MultiCore(), attack.NewV2()), nil
	default:
		return core.Scenario{}, fmt.Errorf("unknown -trace-scenario %q (have vi-uni, vi-smp, gedit-v1, gedit-v2)", name)
	}
}

// traceExport runs one traced round and streams its events as JSONL,
// optionally filtered by kind, pid, and path.
func traceExport(out, scenario string, seed int64, kindsArg string, pid int, path string) error {
	sc, err := traceScenario(scenario, seed)
	if err != nil {
		return err
	}
	filter := trace.Filter{PID: int32(pid), Path: path}
	if kindsArg != "" {
		for _, name := range strings.Split(kindsArg, ",") {
			name = strings.TrimSpace(name)
			kind, ok := sim.ParseEventKind(name)
			if !ok {
				return fmt.Errorf("unknown event kind %q in -trace-kinds (use the names traces print: enter, exit, sem-block, dispatch, name-bind, ...)", name)
			}
			filter.Kinds = append(filter.Kinds, kind)
		}
	}
	round, err := core.RunRound(sc)
	if err != nil {
		return fmt.Errorf("trace round: %w", err)
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	jw := trace.NewJSONLWriter(f, filter)
	for _, e := range round.Events {
		jw.Emit(e)
	}
	if err := jw.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("write %s: %w", out, err)
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("%s: wrote %d of %d events (%s, seed %d, success %v)\n",
		out, jw.Count(), len(round.Events), scenario, sc.Seed, round.Success)
	return nil
}

// benchGuardRun re-times the Fig 6 sweep with the committed record's
// configuration and fails when the current build is more than tol slower
// than the baseline's sweep_ns at the same GOMAXPROCS. Records the
// baseline lacks (e.g. a Table 2 timing) are reported and skipped rather
// than failed.
func benchGuardRun(baselinePath string, tol float64) error {
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("bench-guard: read baseline: %w", err)
	}
	var base sweepRecord
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("bench-guard: parse %s: %w", baselinePath, err)
	}
	if len(base.Fixed) == 0 {
		return fmt.Errorf("bench-guard: %s has no fixed sweep records to guard against", baselinePath)
	}
	scs := fig6SweepScenarios()
	if base.Points != len(scs) {
		return fmt.Errorf("bench-guard: baseline has %d points, current Fig 6 sweep has %d — regenerate %s with -sweep",
			base.Points, len(scs), baselinePath)
	}
	rounds := base.RoundsPerPoint
	if rounds <= 0 {
		return fmt.Errorf("bench-guard: baseline rounds_per_point = %d", rounds)
	}
	if _, err := core.RunSweep(scs, 20, core.SweepOptions{}); err != nil {
		return fmt.Errorf("bench-guard warmup: %w", err)
	}
	const reps = 3
	var failures []string
	for _, f := range base.Fixed {
		prev := runtime.GOMAXPROCS(f.GOMAXPROCS)
		wall, err := bestOf(reps, func() error {
			_, serr := core.RunSweep(scs, rounds, core.SweepOptions{})
			return serr
		})
		runtime.GOMAXPROCS(prev)
		if err != nil {
			return fmt.Errorf("bench-guard at GOMAXPROCS=%d: %w", f.GOMAXPROCS, err)
		}
		ratio := float64(wall.Nanoseconds()) / float64(f.SweepNs)
		verdict := "ok"
		if ratio > 1+tol {
			verdict = "REGRESSED"
			failures = append(failures, fmt.Sprintf("GOMAXPROCS=%d: %.1fms vs baseline %.1fms (%.2fx)",
				f.GOMAXPROCS, float64(wall.Nanoseconds())/1e6, float64(f.SweepNs)/1e6, ratio))
		}
		fmt.Printf("bench-guard %s GOMAXPROCS=%d: %.1fms vs baseline %.1fms (%.2fx, tolerance %.2fx) %s\n",
			base.Benchmark, f.GOMAXPROCS,
			float64(wall.Nanoseconds())/1e6, float64(f.SweepNs)/1e6, ratio, 1+tol, verdict)
	}
	fmt.Printf("bench-guard: baseline %s carries no Table 2 timing; nothing further to compare\n", baselinePath)
	if len(failures) > 0 {
		return fmt.Errorf("bench-guard: sweep regressed beyond %.0f%% tolerance:\n  %s",
			tol*100, strings.Join(failures, "\n  "))
	}
	return nil
}

// benchCompare renders a benchstat-style old-vs-new table from two
// committed sweep records (e.g. BENCH_2.json vs BENCH_3.json), pairing
// fixed rows by GOMAXPROCS. It reads committed JSON only — nothing is
// re-timed — so it is safe to run on any host, including CI runners whose
// wall times are not comparable to the baselines'. In strict mode it
// additionally diffs allocs/op per GOMAXPROCS row and returns an error —
// non-zero exit — when the new record allocates more than allocTol past
// the old one; rows either record lacks allocation data for (anything
// before BENCH_4) are reported as n/a and skipped, never failed, so the
// gate tightens only once both sides carry the data.
func benchCompare(arg string, strict bool, allocTol float64) error {
	parts := strings.Split(arg, ",")
	if len(parts) != 2 || strings.TrimSpace(parts[0]) == "" || strings.TrimSpace(parts[1]) == "" {
		return fmt.Errorf("-bench-compare wants exactly two comma-separated records: old.json,new.json")
	}
	oldPath, newPath := strings.TrimSpace(parts[0]), strings.TrimSpace(parts[1])
	load := func(path string) (sweepRecord, error) {
		var rec sweepRecord
		data, err := os.ReadFile(path)
		if err != nil {
			return rec, fmt.Errorf("bench-compare: %w", err)
		}
		if err := json.Unmarshal(data, &rec); err != nil {
			return rec, fmt.Errorf("bench-compare: parse %s: %w", path, err)
		}
		if len(rec.Fixed) == 0 {
			return rec, fmt.Errorf("bench-compare: %s has no fixed sweep records", path)
		}
		return rec, nil
	}
	oldRec, err := load(oldPath)
	if err != nil {
		return err
	}
	newRec, err := load(newPath)
	if err != nil {
		return err
	}
	describe := func(path string, r sweepRecord) {
		fmt.Printf("%s: %s, %d points x %d rounds, %s", path, r.Benchmark, r.Points, r.RoundsPerPoint, r.GoVersion)
		if c := r.Provenance.GitCommit; len(c) >= 12 {
			fmt.Printf(", commit %s", c[:12])
		}
		if r.Provenance.Timestamp != "" {
			fmt.Printf(", %s", r.Provenance.Timestamp)
		}
		fmt.Println()
	}
	describe(oldPath, oldRec)
	describe(newPath, newRec)
	fmt.Println()

	ms := func(ns int64) string { return fmt.Sprintf("%.1fms", float64(ns)/1e6) }
	delta := func(oldNs, newNs int64) string {
		return fmt.Sprintf("%+.2f%%", (float64(newNs)/float64(oldNs)-1)*100)
	}
	fmt.Printf("%-34s %12s %12s %9s\n", "name", "old time/op", "new time/op", "delta")
	for _, nf := range newRec.Fixed {
		var of *sweepFixedRecord
		for i := range oldRec.Fixed {
			if oldRec.Fixed[i].GOMAXPROCS == nf.GOMAXPROCS {
				of = &oldRec.Fixed[i]
				break
			}
		}
		if of == nil {
			fmt.Printf("%-34s %12s %12s %9s\n",
				fmt.Sprintf("Fig6Sweep/GOMAXPROCS=%d", nf.GOMAXPROCS), "-", ms(nf.SweepNs), "n/a")
			continue
		}
		rows := []struct {
			name string
			o, n int64
		}{
			{fmt.Sprintf("Fig6BaselineLoop/GOMAXPROCS=%d", nf.GOMAXPROCS), of.BaselineNs, nf.BaselineNs},
			{fmt.Sprintf("Fig6SerialLoop/GOMAXPROCS=%d", nf.GOMAXPROCS), of.SerialNs, nf.SerialNs},
			{fmt.Sprintf("Fig6Sweep/GOMAXPROCS=%d", nf.GOMAXPROCS), of.SweepNs, nf.SweepNs},
		}
		for _, r := range rows {
			fmt.Printf("%-34s %12s %12s %9s\n", r.name, ms(r.o), ms(r.n), delta(r.o, r.n))
		}
	}
	if oldRec.Adaptive != nil && newRec.Adaptive != nil {
		fmt.Printf("%-34s %12s %12s %9s\n", "Fig6AdaptiveSweep",
			ms(oldRec.Adaptive.WallNs), ms(newRec.Adaptive.WallNs),
			delta(oldRec.Adaptive.WallNs, newRec.Adaptive.WallNs))
	}
	if !strict {
		return nil
	}

	fmt.Println()
	fmt.Printf("%-34s %12s %12s %9s\n", "name", "old allocs/op", "new allocs/op", "delta")
	var allocFailures []string
	for _, nf := range newRec.Fixed {
		name := fmt.Sprintf("Fig6SweepRound/GOMAXPROCS=%d", nf.GOMAXPROCS)
		var of *sweepFixedRecord
		for i := range oldRec.Fixed {
			if oldRec.Fixed[i].GOMAXPROCS == nf.GOMAXPROCS {
				of = &oldRec.Fixed[i]
				break
			}
		}
		if of == nil || of.AllocsPerRound == 0 || nf.AllocsPerRound == 0 {
			// A zero means the record predates allocation capture.
			fmt.Printf("%-34s %12s %12s %9s\n", name, allocStr(of), allocStr(&nf), "n/a")
			continue
		}
		growth := nf.AllocsPerRound/of.AllocsPerRound - 1
		fmt.Printf("%-34s %13.1f %13.1f %+8.2f%%\n", name, of.AllocsPerRound, nf.AllocsPerRound, growth*100)
		if growth > allocTol {
			allocFailures = append(allocFailures, fmt.Sprintf("GOMAXPROCS=%d: %.1f vs %.1f allocs/op (%+.1f%%)",
				nf.GOMAXPROCS, nf.AllocsPerRound, of.AllocsPerRound, growth*100))
		}
	}
	if len(allocFailures) > 0 {
		return fmt.Errorf("bench-compare -strict: allocs/op regressed beyond %.0f%% tolerance:\n  %s",
			allocTol*100, strings.Join(allocFailures, "\n  "))
	}
	return nil
}

// allocStr renders a record's allocs/op for the strict table, with "-"
// standing in for records that predate allocation capture.
func allocStr(f *sweepFixedRecord) string {
	if f == nil || f.AllocsPerRound == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f", f.AllocsPerRound)
}

// sweepFixedRecord compares the three ways of running the Fig 6 sweep at
// one GOMAXPROCS setting: the pre-sweep per-campaign runner (fresh worker
// set and O(rounds) buffers per point), the current serial RunCampaign
// loop, and the interleaved sweep scheduler.
type sweepFixedRecord struct {
	GOMAXPROCS      int     `json:"gomaxprocs"`
	BaselineNs      int64   `json:"baseline_loop_ns"`
	SerialNs        int64   `json:"serial_campaign_loop_ns"`
	SweepNs         int64   `json:"sweep_ns"`
	SpeedupVsBase   float64 `json:"sweep_speedup_vs_baseline"`
	SpeedupVsSerial float64 `json:"sweep_speedup_vs_serial"`
	BitIdentical    bool    `json:"bit_identical"`
	RoundsPerSecond float64 `json:"sweep_rounds_per_sec"`
	// AllocsPerRound is the steady-state heap allocation count per sweep
	// round (pool bookkeeping included). Added with BENCH_4; absent (0)
	// in older committed records, which -bench-compare -strict skips.
	AllocsPerRound float64 `json:"allocs_per_round,omitempty"`
}

// sweepCoalesceRecord brackets what stretch coalescing buys on the same
// build: the full Fig 6 sweep and its largest point re-timed with
// Config.DisableCoalesce forced on (every chunk stepped through the
// event loop), against the production coalesced path, with bit-identity
// of the two result sets verified. Measured at GOMAXPROCS=1 so the
// ratio isolates the fast path from pool scheduling effects.
type sweepCoalesceRecord struct {
	SweepNs                  int64   `json:"sweep_ns"`
	SweepSteppedNs           int64   `json:"sweep_stepped_ns"`
	SweepSpeedup             float64 `json:"sweep_speedup"`
	BigFileKB                int     `json:"bigfile_kb"`
	BigFileNsPerRound        int64   `json:"bigfile_ns_per_round"`
	BigFileSteppedNsPerRound int64   `json:"bigfile_stepped_ns_per_round"`
	BigFileSpeedup           float64 `json:"bigfile_speedup"`
	BitIdentical             bool    `json:"bit_identical"`
}

// sweepAdaptiveRecord reports what the opt-in sequential-stopping budget
// saves on the same sweep.
type sweepAdaptiveRecord struct {
	HalfWidth       float64 `json:"half_width"`
	Z               float64 `json:"z"`
	MinRounds       int     `json:"min_rounds"`
	FixedTotal      int     `json:"fixed_total_rounds"`
	RoundsCommitted int     `json:"rounds_committed"`
	RoundsExecuted  int     `json:"rounds_executed"`
	RoundsSavedPct  float64 `json:"rounds_saved_pct"`
	PointsStopped   int     `json:"points_stopped"`
	WallNs          int64   `json:"wall_ns"`
	PointsPerSec    float64 `json:"points_per_sec"`
}

// sweepRecord is the machine-readable -sweep output (BENCH_2.json,
// BENCH_3.json). Provenance was added with BENCH_3; older committed records
// simply unmarshal it as zero.
type sweepRecord struct {
	Benchmark      string               `json:"benchmark"`
	Points         int                  `json:"points"`
	RoundsPerPoint int                  `json:"rounds_per_point"`
	GoVersion      string               `json:"go_version"`
	NumCPU         int                  `json:"num_cpu"`
	Provenance     provenance           `json:"provenance"`
	Fixed          []sweepFixedRecord   `json:"fixed"`
	Coalesce       *sweepCoalesceRecord `json:"coalesce,omitempty"`
	Adaptive       *sweepAdaptiveRecord `json:"adaptive,omitempty"`
}

// fig6SweepScenarios is the production Fig 6 point set (sizes, seeds,
// strides exactly as experiments.Fig6 builds them).
func fig6SweepScenarios() []core.Scenario {
	sizes := []int{100, 200, 300, 400, 500, 600, 700, 800, 900, 1000}
	m := machine.Uniprocessor()
	scs := make([]core.Scenario, len(sizes))
	for i, kb := range sizes {
		scs[i] = core.Scenario{
			Machine:    m,
			Victim:     victim.NewVi(),
			Attacker:   attack.NewV1(),
			UseSyscall: "chown",
			FileSize:   int64(kb) << 10,
			Seed:       1007 + int64(i)*7919,
		}
	}
	return scs
}

// bestOf runs f reps times and returns the fastest wall time.
func bestOf(reps int, f func() error) (time.Duration, error) {
	best := time.Duration(0)
	for r := 0; r < reps; r++ {
		start := time.Now()
		if err := f(); err != nil {
			return 0, err
		}
		if wall := time.Since(start); best == 0 || wall < best {
			best = wall
		}
	}
	return best, nil
}

// benchSweep times the full Fig 6 sweep three ways (pre-sweep baseline
// loop, serial RunCampaign loop, RunSweep) across GOMAXPROCS settings,
// verifies the results are bit-identical, optionally measures the
// adaptive budget's savings, and writes the record to out.
func benchSweep(out string, adaptive bool, halfWidth float64, minRounds int) error {
	scs := fig6SweepScenarios()
	const rounds, reps = 500, 5
	rec := sweepRecord{
		Benchmark:      "fig6-uniprocessor-sweep",
		Points:         len(scs),
		RoundsPerPoint: rounds,
		GoVersion:      runtime.Version(),
		NumCPU:         runtime.NumCPU(),
		Provenance:     captureProvenance(),
	}

	// Warm the shared pool and the page cache equivalent (seed the lazily
	// started workers) before timing anything.
	if _, err := core.RunSweep(scs, 20, core.SweepOptions{}); err != nil {
		return fmt.Errorf("sweep warmup: %w", err)
	}

	procsList := []int{1, runtime.NumCPU()}
	if procsList[1] < 2 {
		procsList[1] = 2 // exercise the concurrent path even on 1-CPU hosts
	}
	for _, procs := range procsList {
		prev := runtime.GOMAXPROCS(procs)
		var baseRes, serialRes, sweepRes []core.CampaignResult
		baseNs, err := bestOf(reps, func() error {
			baseRes = baseRes[:0]
			for _, sc := range scs {
				res, err := core.RunCampaignBaseline(sc, rounds)
				if err != nil {
					return err
				}
				baseRes = append(baseRes, res)
			}
			return nil
		})
		if err == nil {
			var serialWall time.Duration
			serialWall, err = bestOf(reps, func() error {
				serialRes = serialRes[:0]
				for _, sc := range scs {
					res, err := core.RunCampaign(sc, rounds)
					if err != nil {
						return err
					}
					serialRes = append(serialRes, res)
				}
				return nil
			})
			if err == nil {
				var sweepWall time.Duration
				sweepWall, err = bestOf(reps, func() error {
					var serr error
					sweepRes, serr = core.RunSweep(scs, rounds, core.SweepOptions{})
					return serr
				})
				if err == nil {
					identical := len(sweepRes) == len(scs)
					for i := range scs {
						if baseRes[i] != serialRes[i] || serialRes[i] != sweepRes[i] {
							identical = false
						}
					}
					// One untimed sweep bracketed by memstats reads gives
					// the steady-state allocation count per round.
					runtime.GC()
					var m0, m1 runtime.MemStats
					runtime.ReadMemStats(&m0)
					if _, err = core.RunSweep(scs, rounds, core.SweepOptions{}); err == nil {
						runtime.ReadMemStats(&m1)
						rec.Fixed = append(rec.Fixed, sweepFixedRecord{
							GOMAXPROCS:      procs,
							BaselineNs:      baseNs.Nanoseconds(),
							SerialNs:        serialWall.Nanoseconds(),
							SweepNs:         sweepWall.Nanoseconds(),
							SpeedupVsBase:   float64(baseNs) / float64(sweepWall),
							SpeedupVsSerial: float64(serialWall) / float64(sweepWall),
							BitIdentical:    identical,
							RoundsPerSecond: float64(len(scs)*rounds) / sweepWall.Seconds(),
							AllocsPerRound:  float64(m1.Mallocs-m0.Mallocs) / float64(len(scs)*rounds),
						})
					}
				}
			}
		}
		runtime.GOMAXPROCS(prev)
		if err != nil {
			return fmt.Errorf("sweep bench at GOMAXPROCS=%d: %w", procs, err)
		}
	}

	// Bracket the coalescing fast path: the same sweep and its largest
	// point with DisableCoalesce forced, at GOMAXPROCS=1.
	{
		stepped := make([]core.Scenario, len(scs))
		for i, sc := range scs {
			sc.DisableCoalesce = true
			stepped[i] = sc
		}
		prev := runtime.GOMAXPROCS(1)
		var coalRes, stepRes []core.CampaignResult
		coalNs, err := bestOf(3, func() error {
			var serr error
			coalRes, serr = core.RunSweep(scs, rounds, core.SweepOptions{})
			return serr
		})
		if err == nil {
			var stepNs time.Duration
			stepNs, err = bestOf(3, func() error {
				var serr error
				stepRes, serr = core.RunSweep(stepped, rounds, core.SweepOptions{})
				return serr
			})
			if err == nil {
				big, bigStepped := scs[len(scs)-1], stepped[len(stepped)-1]
				var bigNs, bigStepNs time.Duration
				bigNs, err = bestOf(3, func() error {
					_, cerr := core.RunCampaign(big, rounds)
					return cerr
				})
				if err == nil {
					bigStepNs, err = bestOf(3, func() error {
						_, cerr := core.RunCampaign(bigStepped, rounds)
						return cerr
					})
					if err == nil {
						identical := len(coalRes) == len(stepRes)
						for i := range coalRes {
							if coalRes[i] != stepRes[i] {
								identical = false
							}
						}
						rec.Coalesce = &sweepCoalesceRecord{
							SweepNs:                  coalNs.Nanoseconds(),
							SweepSteppedNs:           stepNs.Nanoseconds(),
							SweepSpeedup:             float64(stepNs) / float64(coalNs),
							BigFileKB:                int(big.FileSize >> 10),
							BigFileNsPerRound:        bigNs.Nanoseconds() / int64(rounds),
							BigFileSteppedNsPerRound: bigStepNs.Nanoseconds() / int64(rounds),
							BigFileSpeedup:           float64(bigStepNs) / float64(bigNs),
							BitIdentical:             identical,
						}
					}
				}
			}
		}
		runtime.GOMAXPROCS(prev)
		if err != nil {
			return fmt.Errorf("coalesce bracket: %w", err)
		}
	}

	if adaptive {
		points := make([]core.SweepPoint, len(scs))
		for i, sc := range scs {
			points[i] = core.SweepPoint{Scenario: sc, Rounds: rounds}
		}
		stop := core.AdaptiveStop{HalfWidth: halfWidth, MinRounds: minRounds}
		start := time.Now()
		_, stats, err := core.RunSweepPoints(points, core.SweepOptions{Adaptive: stop})
		wall := time.Since(start)
		if err != nil {
			return fmt.Errorf("adaptive sweep: %w", err)
		}
		recMin := minRounds
		if recMin == 0 {
			recMin = 50 // the engine's default minimum
		}
		total := len(scs) * rounds
		rec.Adaptive = &sweepAdaptiveRecord{
			HalfWidth:       halfWidth,
			Z:               1.96,
			MinRounds:       recMin,
			FixedTotal:      total,
			RoundsCommitted: stats.RoundsCommitted,
			RoundsExecuted:  stats.RoundsExecuted,
			RoundsSavedPct:  100 * float64(total-stats.RoundsCommitted) / float64(total),
			PointsStopped:   stats.PointsStopped,
			WallNs:          wall.Nanoseconds(),
			PointsPerSec:    float64(len(scs)) / wall.Seconds(),
		}
	}

	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	for _, f := range rec.Fixed {
		fmt.Printf("%s: GOMAXPROCS=%d baseline %.1fms, serial %.1fms, sweep %.1fms (%.2fx vs baseline, %.2fx vs serial, bit-identical %v)\n",
			out, f.GOMAXPROCS,
			float64(f.BaselineNs)/1e6, float64(f.SerialNs)/1e6, float64(f.SweepNs)/1e6,
			f.SpeedupVsBase, f.SpeedupVsSerial, f.BitIdentical)
	}
	if rec.Coalesce != nil {
		c := rec.Coalesce
		fmt.Printf("%s: coalescing@GOMAXPROCS=1: sweep %.1fms vs stepped %.1fms (%.2fx); %dKB point %.1fµs vs %.1fµs per round (%.2fx); bit-identical %v\n",
			out, float64(c.SweepNs)/1e6, float64(c.SweepSteppedNs)/1e6, c.SweepSpeedup,
			c.BigFileKB, float64(c.BigFileNsPerRound)/1e3, float64(c.BigFileSteppedNsPerRound)/1e3,
			c.BigFileSpeedup, c.BitIdentical)
	}
	if rec.Adaptive != nil {
		a := rec.Adaptive
		fmt.Printf("%s: adaptive @halfwidth %.3f: %d/%d rounds (%.1f%% saved), %d/%d points stopped, %.1fms\n",
			out, a.HalfWidth, a.RoundsCommitted, a.FixedTotal, a.RoundsSavedPct,
			a.PointsStopped, rec.Points, float64(a.WallNs)/1e6)
	}
	return nil
}
