// Command tocttou runs the paper's experiments on the simulated testbeds.
//
// Usage:
//
//	tocttou -list
//	tocttou -experiment fig6 [-rounds N] [-seed S] [-sizes 100,500,1000]
//	tocttou -experiment all
//
// Each experiment renders the corresponding table or figure of
// "Multiprocessors May Reduce System Dependability under File-Based Race
// Condition Attacks" (DSN 2007) from freshly simulated campaigns.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"tocttou/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintf(os.Stderr, "tocttou: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fl := flag.NewFlagSet("tocttou", flag.ContinueOnError)
	list := fl.Bool("list", false, "list available experiments")
	name := fl.String("experiment", "", "experiment to run (or 'all')")
	rounds := fl.Int("rounds", 0, "rounds per campaign (0 = experiment default)")
	seed := fl.Int64("seed", 0, "base seed (0 = fixed default)")
	sizesArg := fl.String("sizes", "", "comma-separated file sizes in KB, where applicable")
	if err := fl.Parse(args); err != nil {
		return err
	}

	if *list || *name == "" {
		fmt.Println("available experiments:")
		for _, n := range experiments.Names() {
			desc, _ := experiments.Describe(n)
			fmt.Printf("  %-9s %s\n", n, desc)
		}
		if *name == "" && !*list {
			return fmt.Errorf("no experiment selected (use -experiment <name> or -experiment all)")
		}
		return nil
	}

	opt := experiments.Options{Rounds: *rounds, Seed: *seed}
	if *sizesArg != "" {
		for _, s := range strings.Split(*sizesArg, ",") {
			kb, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || kb <= 0 {
				return fmt.Errorf("bad size %q", s)
			}
			opt.Sizes = append(opt.Sizes, kb)
		}
	}

	names := []string{*name}
	if *name == "all" {
		names = experiments.Names()
	}
	for _, n := range names {
		started := time.Now()
		res, err := experiments.Run(n, opt)
		if err != nil {
			return err
		}
		fmt.Printf("==== %s (%.1fs) ====\n", n, time.Since(started).Seconds())
		if err := res.Render(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
	}
	return nil
}
