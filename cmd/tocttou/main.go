// Command tocttou runs the paper's experiments on the simulated testbeds.
//
// Usage:
//
//	tocttou -list
//	tocttou -experiment fig6 [-rounds N] [-seed S] [-sizes 100,500,1000]
//	tocttou -experiment all
//	tocttou -bench-baseline [-bench-out BENCH_1.json]
//
// Each experiment renders the corresponding table or figure of
// "Multiprocessors May Reduce System Dependability under File-Based Race
// Condition Attacks" (DSN 2007) from freshly simulated campaigns.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"tocttou/internal/attack"
	"tocttou/internal/core"
	"tocttou/internal/experiments"
	"tocttou/internal/machine"
	"tocttou/internal/victim"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintf(os.Stderr, "tocttou: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fl := flag.NewFlagSet("tocttou", flag.ContinueOnError)
	list := fl.Bool("list", false, "list available experiments")
	name := fl.String("experiment", "", "experiment to run (or 'all')")
	rounds := fl.Int("rounds", 0, "rounds per campaign (0 = experiment default)")
	seed := fl.Int64("seed", 0, "base seed (0 = fixed default)")
	sizesArg := fl.String("sizes", "", "comma-separated file sizes in KB, where applicable")
	benchBase := fl.Bool("bench-baseline", false, "measure per-round campaign cost and write a machine-readable baseline")
	benchOut := fl.String("bench-out", "BENCH_1.json", "output path for -bench-baseline")
	if err := fl.Parse(args); err != nil {
		return err
	}

	if *benchBase {
		return benchBaseline(*benchOut)
	}

	if *list || *name == "" {
		fmt.Println("available experiments:")
		for _, n := range experiments.Names() {
			desc, _ := experiments.Describe(n)
			fmt.Printf("  %-9s %s\n", n, desc)
		}
		if *name == "" && !*list {
			return fmt.Errorf("no experiment selected (use -experiment <name> or -experiment all)")
		}
		return nil
	}

	opt := experiments.Options{Rounds: *rounds, Seed: *seed}
	if *sizesArg != "" {
		for _, s := range strings.Split(*sizesArg, ",") {
			kb, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || kb <= 0 {
				return fmt.Errorf("bad size %q", s)
			}
			opt.Sizes = append(opt.Sizes, kb)
		}
	}

	names := []string{*name}
	if *name == "all" {
		names = experiments.Names()
	}
	for _, n := range names {
		started := time.Now()
		res, err := experiments.Run(n, opt)
		if err != nil {
			return err
		}
		fmt.Printf("==== %s (%.1fs) ====\n", n, time.Since(started).Seconds())
		if err := res.Render(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
	}
	return nil
}

// benchRecord is the machine-readable perf baseline one -bench-baseline run
// emits, giving future changes a per-round cost trajectory to compare
// against (see DESIGN.md's Performance section for the workflow).
type benchRecord struct {
	Benchmark      string  `json:"benchmark"`
	Rounds         int     `json:"rounds"`
	NsPerRound     int64   `json:"ns_per_round"`
	AllocsPerRound int64   `json:"allocs_per_round"`
	BytesPerRound  int64   `json:"bytes_per_round"`
	SuccessRate    float64 `json:"success_rate"`
	GoVersion      string  `json:"go_version"`
	GOMAXPROCS     int     `json:"gomaxprocs"`
}

// benchBaseline times a fixed vi/SMP campaign — the workload the paper's
// Figures 6–7 and Table 1 are built from — and writes {ns, allocs, bytes}
// per round to out.
func benchBaseline(out string) error {
	sc := core.Scenario{
		Machine:    machine.SMP2(),
		Victim:     victim.NewVi(),
		Attacker:   attack.NewV1(),
		UseSyscall: "chown",
		FileSize:   100 << 10,
		Seed:       7001,
	}
	const warmup, rounds = 200, 2000
	if _, err := core.RunCampaign(sc, warmup); err != nil {
		return fmt.Errorf("bench warmup: %w", err)
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	res, err := core.RunCampaign(sc, rounds)
	wall := time.Since(start)
	if err != nil {
		return fmt.Errorf("bench campaign: %w", err)
	}
	runtime.ReadMemStats(&after)
	rec := benchRecord{
		Benchmark:      "vi-smp2-100KB-campaign",
		Rounds:         rounds,
		NsPerRound:     wall.Nanoseconds() / rounds,
		AllocsPerRound: int64(after.Mallocs-before.Mallocs) / rounds,
		BytesPerRound:  int64(after.TotalAlloc-before.TotalAlloc) / rounds,
		SuccessRate:    res.Rate(),
		GoVersion:      runtime.Version(),
		GOMAXPROCS:     runtime.GOMAXPROCS(0),
	}
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("%s: %d ns/round, %d allocs/round, %d B/round (success %.1f%%)\n",
		out, rec.NsPerRound, rec.AllocsPerRound, rec.BytesPerRound, rec.SuccessRate*100)
	return nil
}
