// Command tocttou runs the paper's experiments on the simulated testbeds.
//
// Usage:
//
//	tocttou -list
//	tocttou -experiment fig6 [-rounds N] [-seed S] [-sizes 100,500,1000]
//	tocttou -experiment all [-adaptive [-halfwidth 0.02]]
//	tocttou -bench-baseline [-bench-out BENCH_1.json]
//	tocttou -sweep [-adaptive] [-halfwidth 0.02] [-sweep-out BENCH_2.json]
//
// Each experiment renders the corresponding table or figure of
// "Multiprocessors May Reduce System Dependability under File-Based Race
// Condition Attacks" (DSN 2007) from freshly simulated campaigns.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"tocttou/internal/attack"
	"tocttou/internal/core"
	"tocttou/internal/experiments"
	"tocttou/internal/machine"
	"tocttou/internal/victim"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintf(os.Stderr, "tocttou: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fl := flag.NewFlagSet("tocttou", flag.ContinueOnError)
	list := fl.Bool("list", false, "list available experiments")
	name := fl.String("experiment", "", "experiment to run (or 'all')")
	rounds := fl.Int("rounds", 0, "rounds per campaign (0 = experiment default)")
	seed := fl.Int64("seed", 0, "base seed (0 = fixed default)")
	sizesArg := fl.String("sizes", "", "comma-separated file sizes in KB, where applicable")
	benchBase := fl.Bool("bench-baseline", false, "measure per-round campaign cost and write a machine-readable baseline")
	benchOut := fl.String("bench-out", "BENCH_1.json", "output path for -bench-baseline")
	sweep := fl.Bool("sweep", false, "benchmark the Fig 6 sweep (serial loop vs sweep scheduler) and write a machine-readable record")
	sweepOut := fl.String("sweep-out", "BENCH_2.json", "output path for -sweep")
	adaptive := fl.Bool("adaptive", false, "enable adaptive round budgets (sequential stopping at -halfwidth)")
	halfWidth := fl.Float64("halfwidth", 0.02, "target 95% Wilson half-width on the success rate for -adaptive")
	if err := fl.Parse(args); err != nil {
		return err
	}

	if *benchBase {
		return benchBaseline(*benchOut)
	}
	if *sweep {
		return benchSweep(*sweepOut, *adaptive, *halfWidth)
	}

	if *list || *name == "" {
		fmt.Println("available experiments:")
		for _, n := range experiments.Names() {
			desc, _ := experiments.Describe(n)
			fmt.Printf("  %-9s %s\n", n, desc)
		}
		if *name == "" && !*list {
			return fmt.Errorf("no experiment selected (use -experiment <name> or -experiment all)")
		}
		return nil
	}

	opt := experiments.Options{Rounds: *rounds, Seed: *seed}
	if *adaptive {
		// Opt-in sequential stopping: sweep-based experiments stop each
		// point once its estimate is tight enough instead of running the
		// full fixed budget (results then depend on the committed length).
		opt.AdaptiveHalfWidth = *halfWidth
	}
	if *sizesArg != "" {
		for _, s := range strings.Split(*sizesArg, ",") {
			kb, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || kb <= 0 {
				return fmt.Errorf("bad size %q", s)
			}
			opt.Sizes = append(opt.Sizes, kb)
		}
	}

	names := []string{*name}
	if *name == "all" {
		names = experiments.Names()
	}
	for _, n := range names {
		started := time.Now()
		res, err := experiments.Run(n, opt)
		if err != nil {
			return err
		}
		fmt.Printf("==== %s (%.1fs) ====\n", n, time.Since(started).Seconds())
		if err := res.Render(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
	}
	return nil
}

// benchRecord is the machine-readable perf baseline one -bench-baseline run
// emits, giving future changes a per-round cost trajectory to compare
// against (see DESIGN.md's Performance section for the workflow).
type benchRecord struct {
	Benchmark      string  `json:"benchmark"`
	Rounds         int     `json:"rounds"`
	NsPerRound     int64   `json:"ns_per_round"`
	AllocsPerRound int64   `json:"allocs_per_round"`
	BytesPerRound  int64   `json:"bytes_per_round"`
	SuccessRate    float64 `json:"success_rate"`
	GoVersion      string  `json:"go_version"`
	GOMAXPROCS     int     `json:"gomaxprocs"`
}

// benchBaseline times a fixed vi/SMP campaign — the workload the paper's
// Figures 6–7 and Table 1 are built from — and writes {ns, allocs, bytes}
// per round to out.
func benchBaseline(out string) error {
	sc := core.Scenario{
		Machine:    machine.SMP2(),
		Victim:     victim.NewVi(),
		Attacker:   attack.NewV1(),
		UseSyscall: "chown",
		FileSize:   100 << 10,
		Seed:       7001,
	}
	const warmup, rounds = 200, 2000
	if _, err := core.RunCampaign(sc, warmup); err != nil {
		return fmt.Errorf("bench warmup: %w", err)
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	res, err := core.RunCampaign(sc, rounds)
	wall := time.Since(start)
	if err != nil {
		return fmt.Errorf("bench campaign: %w", err)
	}
	runtime.ReadMemStats(&after)
	rec := benchRecord{
		Benchmark:      "vi-smp2-100KB-campaign",
		Rounds:         rounds,
		NsPerRound:     wall.Nanoseconds() / rounds,
		AllocsPerRound: int64(after.Mallocs-before.Mallocs) / rounds,
		BytesPerRound:  int64(after.TotalAlloc-before.TotalAlloc) / rounds,
		SuccessRate:    res.Rate(),
		GoVersion:      runtime.Version(),
		GOMAXPROCS:     runtime.GOMAXPROCS(0),
	}
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("%s: %d ns/round, %d allocs/round, %d B/round (success %.1f%%)\n",
		out, rec.NsPerRound, rec.AllocsPerRound, rec.BytesPerRound, rec.SuccessRate*100)
	return nil
}

// sweepFixedRecord compares the three ways of running the Fig 6 sweep at
// one GOMAXPROCS setting: the pre-sweep per-campaign runner (fresh worker
// set and O(rounds) buffers per point), the current serial RunCampaign
// loop, and the interleaved sweep scheduler.
type sweepFixedRecord struct {
	GOMAXPROCS      int     `json:"gomaxprocs"`
	BaselineNs      int64   `json:"baseline_loop_ns"`
	SerialNs        int64   `json:"serial_campaign_loop_ns"`
	SweepNs         int64   `json:"sweep_ns"`
	SpeedupVsBase   float64 `json:"sweep_speedup_vs_baseline"`
	SpeedupVsSerial float64 `json:"sweep_speedup_vs_serial"`
	BitIdentical    bool    `json:"bit_identical"`
	RoundsPerSecond float64 `json:"sweep_rounds_per_sec"`
}

// sweepAdaptiveRecord reports what the opt-in sequential-stopping budget
// saves on the same sweep.
type sweepAdaptiveRecord struct {
	HalfWidth       float64 `json:"half_width"`
	Z               float64 `json:"z"`
	MinRounds       int     `json:"min_rounds"`
	FixedTotal      int     `json:"fixed_total_rounds"`
	RoundsCommitted int     `json:"rounds_committed"`
	RoundsExecuted  int     `json:"rounds_executed"`
	RoundsSavedPct  float64 `json:"rounds_saved_pct"`
	PointsStopped   int     `json:"points_stopped"`
	WallNs          int64   `json:"wall_ns"`
	PointsPerSec    float64 `json:"points_per_sec"`
}

// sweepRecord is the machine-readable -sweep output (BENCH_2.json).
type sweepRecord struct {
	Benchmark      string               `json:"benchmark"`
	Points         int                  `json:"points"`
	RoundsPerPoint int                  `json:"rounds_per_point"`
	GoVersion      string               `json:"go_version"`
	NumCPU         int                  `json:"num_cpu"`
	Fixed          []sweepFixedRecord   `json:"fixed"`
	Adaptive       *sweepAdaptiveRecord `json:"adaptive,omitempty"`
}

// fig6SweepScenarios is the production Fig 6 point set (sizes, seeds,
// strides exactly as experiments.Fig6 builds them).
func fig6SweepScenarios() []core.Scenario {
	sizes := []int{100, 200, 300, 400, 500, 600, 700, 800, 900, 1000}
	m := machine.Uniprocessor()
	scs := make([]core.Scenario, len(sizes))
	for i, kb := range sizes {
		scs[i] = core.Scenario{
			Machine:    m,
			Victim:     victim.NewVi(),
			Attacker:   attack.NewV1(),
			UseSyscall: "chown",
			FileSize:   int64(kb) << 10,
			Seed:       1007 + int64(i)*7919,
		}
	}
	return scs
}

// bestOf runs f reps times and returns the fastest wall time.
func bestOf(reps int, f func() error) (time.Duration, error) {
	best := time.Duration(0)
	for r := 0; r < reps; r++ {
		start := time.Now()
		if err := f(); err != nil {
			return 0, err
		}
		if wall := time.Since(start); best == 0 || wall < best {
			best = wall
		}
	}
	return best, nil
}

// benchSweep times the full Fig 6 sweep three ways (pre-sweep baseline
// loop, serial RunCampaign loop, RunSweep) across GOMAXPROCS settings,
// verifies the results are bit-identical, optionally measures the
// adaptive budget's savings, and writes the record to out.
func benchSweep(out string, adaptive bool, halfWidth float64) error {
	scs := fig6SweepScenarios()
	const rounds, reps = 500, 5
	rec := sweepRecord{
		Benchmark:      "fig6-uniprocessor-sweep",
		Points:         len(scs),
		RoundsPerPoint: rounds,
		GoVersion:      runtime.Version(),
		NumCPU:         runtime.NumCPU(),
	}

	// Warm the shared pool and the page cache equivalent (seed the lazily
	// started workers) before timing anything.
	if _, err := core.RunSweep(scs, 20, core.SweepOptions{}); err != nil {
		return fmt.Errorf("sweep warmup: %w", err)
	}

	procsList := []int{1, runtime.NumCPU()}
	if procsList[1] < 2 {
		procsList[1] = 2 // exercise the concurrent path even on 1-CPU hosts
	}
	for _, procs := range procsList {
		prev := runtime.GOMAXPROCS(procs)
		var baseRes, serialRes, sweepRes []core.CampaignResult
		baseNs, err := bestOf(reps, func() error {
			baseRes = baseRes[:0]
			for _, sc := range scs {
				res, err := core.RunCampaignBaseline(sc, rounds)
				if err != nil {
					return err
				}
				baseRes = append(baseRes, res)
			}
			return nil
		})
		if err == nil {
			var serialWall time.Duration
			serialWall, err = bestOf(reps, func() error {
				serialRes = serialRes[:0]
				for _, sc := range scs {
					res, err := core.RunCampaign(sc, rounds)
					if err != nil {
						return err
					}
					serialRes = append(serialRes, res)
				}
				return nil
			})
			if err == nil {
				var sweepWall time.Duration
				sweepWall, err = bestOf(reps, func() error {
					var serr error
					sweepRes, serr = core.RunSweep(scs, rounds, core.SweepOptions{})
					return serr
				})
				if err == nil {
					identical := len(sweepRes) == len(scs)
					for i := range scs {
						if baseRes[i] != serialRes[i] || serialRes[i] != sweepRes[i] {
							identical = false
						}
					}
					rec.Fixed = append(rec.Fixed, sweepFixedRecord{
						GOMAXPROCS:      procs,
						BaselineNs:      baseNs.Nanoseconds(),
						SerialNs:        serialWall.Nanoseconds(),
						SweepNs:         sweepWall.Nanoseconds(),
						SpeedupVsBase:   float64(baseNs) / float64(sweepWall),
						SpeedupVsSerial: float64(serialWall) / float64(sweepWall),
						BitIdentical:    identical,
						RoundsPerSecond: float64(len(scs)*rounds) / sweepWall.Seconds(),
					})
				}
			}
		}
		runtime.GOMAXPROCS(prev)
		if err != nil {
			return fmt.Errorf("sweep bench at GOMAXPROCS=%d: %w", procs, err)
		}
	}

	if adaptive {
		points := make([]core.SweepPoint, len(scs))
		for i, sc := range scs {
			points[i] = core.SweepPoint{Scenario: sc, Rounds: rounds}
		}
		stop := core.AdaptiveStop{HalfWidth: halfWidth}
		start := time.Now()
		_, stats, err := core.RunSweepPoints(points, core.SweepOptions{Adaptive: stop})
		wall := time.Since(start)
		if err != nil {
			return fmt.Errorf("adaptive sweep: %w", err)
		}
		total := len(scs) * rounds
		rec.Adaptive = &sweepAdaptiveRecord{
			HalfWidth:       halfWidth,
			Z:               1.96,
			MinRounds:       50,
			FixedTotal:      total,
			RoundsCommitted: stats.RoundsCommitted,
			RoundsExecuted:  stats.RoundsExecuted,
			RoundsSavedPct:  100 * float64(total-stats.RoundsCommitted) / float64(total),
			PointsStopped:   stats.PointsStopped,
			WallNs:          wall.Nanoseconds(),
			PointsPerSec:    float64(len(scs)) / wall.Seconds(),
		}
	}

	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	for _, f := range rec.Fixed {
		fmt.Printf("%s: GOMAXPROCS=%d baseline %.1fms, serial %.1fms, sweep %.1fms (%.2fx vs baseline, %.2fx vs serial, bit-identical %v)\n",
			out, f.GOMAXPROCS,
			float64(f.BaselineNs)/1e6, float64(f.SerialNs)/1e6, float64(f.SweepNs)/1e6,
			f.SpeedupVsBase, f.SpeedupVsSerial, f.BitIdentical)
	}
	if rec.Adaptive != nil {
		a := rec.Adaptive
		fmt.Printf("%s: adaptive @halfwidth %.3f: %d/%d rounds (%.1f%% saved), %d/%d points stopped, %.1fms\n",
			out, a.HalfWidth, a.RoundsCommitted, a.FixedTotal, a.RoundsSavedPct,
			a.PointsStopped, rec.Points, float64(a.WallNs)/1e6)
	}
	return nil
}
