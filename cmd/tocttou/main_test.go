package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The fault/checkpoint flags are validated at parse time, before any
// simulation runs; every rejected combination must name the offending
// flag so the error is actionable.
func TestRunRejectsBadFlagCombos(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{
			"fault-rates without faultsweep",
			[]string{"-experiment", "fig6", "-fault-rates", "0.1"},
			"-fault-rates",
		},
		{
			"fault-seed without faultsweep",
			[]string{"-experiment", "fig6", "-fault-seed", "7"},
			"-fault-seed",
		},
		{
			"fault rate above one",
			[]string{"-experiment", "faultsweep", "-fault-rates", "1.5"},
			"[0, 1]",
		},
		{
			"fault rate negative",
			[]string{"-experiment", "faultsweep", "-fault-rates", "-0.1"},
			"[0, 1]",
		},
		{
			"fault rate unparsable",
			[]string{"-experiment", "faultsweep", "-fault-rates", "lots"},
			"bad fault rate",
		},
		{
			"fault rates empty",
			[]string{"-experiment", "faultsweep", "-fault-rates", ""},
			"fault rate",
		},
		{
			"checkpoint with several experiments",
			[]string{"-experiment", "fig6,headline", "-checkpoint", "x.ckpt"},
			"exactly one",
		},
		{
			"checkpoint with all",
			[]string{"-experiment", "all", "-checkpoint", "x.ckpt"},
			"exactly one",
		},
		{
			"checkpoint with unsupported experiment",
			[]string{"-experiment", "sendmail", "-checkpoint", "x.ckpt"},
			"not supported",
		},
		{
			"checkpoint without experiment mode",
			[]string{"-sweep", "-checkpoint", "x.ckpt"},
			"-checkpoint",
		},
		{
			"checkpoint with bench mode",
			[]string{"-bench-baseline", "-checkpoint", "x.ckpt"},
			"-checkpoint",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := run(c.args)
			if err == nil {
				t.Fatalf("run(%v) succeeded, want error", c.args)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("run(%v) error %q does not mention %q", c.args, err, c.want)
			}
		})
	}
}

// TestScenarioFlagValidation pins the -scenario contract at the flag
// layer: the file carries the whole configuration, so every overriding
// knob is rejected at parse time, before the file is even opened.
func TestScenarioFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{
			"scenario with experiment",
			[]string{"-scenario", "x.yaml", "-experiment", "fig6"},
			"-experiment does not apply",
		},
		{
			"scenario with rounds override",
			[]string{"-scenario", "x.yaml", "-rounds", "10"},
			"-rounds does not apply",
		},
		{
			"scenario with seed override",
			[]string{"-scenario", "x.yaml", "-seed", "7"},
			"-seed does not apply",
		},
		{
			"scenario with adaptive",
			[]string{"-scenario", "x.yaml", "-adaptive"},
			"-adaptive does not apply",
		},
		{
			"scenario with bench mode",
			[]string{"-scenario", "x.yaml", "-bench-baseline"},
			"-bench-baseline does not apply",
		},
		{
			"scenario with trace export",
			[]string{"-scenario", "x.yaml", "-trace-out", "t.jsonl"},
			"-trace-out does not apply",
		},
		{
			"missing scenario file",
			[]string{"-scenario", "definitely-absent.yaml"},
			"definitely-absent.yaml",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := run(c.args)
			if err == nil {
				t.Fatalf("run(%v) succeeded, want error", c.args)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("run(%v) error %q does not mention %q", c.args, err, c.want)
			}
		})
	}
}

// TestScenarioMalformedSpecExitsNonZero pins the parse-time-validation
// contract end-to-end: a spec with an unknown key, a bad value, or a
// failing assertion turns into a run() error (exit status 1), and the
// error names the offending path and line.
func TestScenarioMalformedSpecExitsNonZero(t *testing.T) {
	dir := t.TempDir()
	writeSpec := func(name, content string) string {
		t.Helper()
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}

	unknown := writeSpec("unknown.yaml",
		"name: x\nmachine: up\nrounds: 5\nseed: 1\nvictim: vi\nattacker: v1\nsizes_kb: [50]\nturbo: on\n")
	err := run([]string{"-scenario", unknown})
	if err == nil {
		t.Fatal("unknown key accepted")
	}
	for _, want := range []string{"unknown key \"turbo\"", "line 8", "unknown.yaml"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %q", err, want)
		}
	}

	badValue := writeSpec("badvalue.yaml",
		"name: x\nmachine: hal9000\nrounds: 5\nseed: 1\nvictim: vi\nattacker: v1\nsizes_kb: [50]\n")
	if err := run([]string{"-scenario", badValue}); err == nil || !strings.Contains(err.Error(), "hal9000") {
		t.Errorf("bad machine: got %v", err)
	}

	failing := writeSpec("failing.yaml",
		"name: x\nmachine: up\nrounds: 5\nseed: 1\nvictim: vi\nattacker: v1\nsizes_kb: [50]\n"+
			"assertions:\n  - metric: rounds\n    max: 1\n")
	err = run([]string{"-scenario", failing})
	if err == nil {
		t.Fatal("failing assertion accepted")
	}
	if !strings.Contains(err.Error(), "assertion 0") {
		t.Errorf("assertion failure %q does not name the assertion", err)
	}
}

// TestScenarioGoldenSnapshot runs a tiny valid scenario with -golden and
// checks the snapshot lands under the spec's name.
func TestScenarioGoldenSnapshot(t *testing.T) {
	dir := t.TempDir()
	spec := filepath.Join(dir, "tiny.yaml")
	content := "name: tiny-check\nmachine: up\nrounds: 4\nseed: 11\nvictim: vi\nattacker: v1\nsizes_kb: [50]\n"
	if err := os.WriteFile(spec, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join(dir, "golden")
	if err := run([]string{"-scenario", spec, "-golden", golden}); err != nil {
		t.Fatalf("golden scenario run: %v", err)
	}
	data, err := os.ReadFile(filepath.Join(golden, "tiny-check.txt"))
	if err != nil {
		t.Fatalf("golden snapshot missing: %v", err)
	}
	if !strings.Contains(string(data), "tiny-check") {
		t.Errorf("snapshot does not carry the scenario name:\n%s", data)
	}
}
