package main

import (
	"strings"
	"testing"
)

// The fault/checkpoint flags are validated at parse time, before any
// simulation runs; every rejected combination must name the offending
// flag so the error is actionable.
func TestRunRejectsBadFlagCombos(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{
			"fault-rates without faultsweep",
			[]string{"-experiment", "fig6", "-fault-rates", "0.1"},
			"-fault-rates",
		},
		{
			"fault-seed without faultsweep",
			[]string{"-experiment", "fig6", "-fault-seed", "7"},
			"-fault-seed",
		},
		{
			"fault rate above one",
			[]string{"-experiment", "faultsweep", "-fault-rates", "1.5"},
			"[0, 1]",
		},
		{
			"fault rate negative",
			[]string{"-experiment", "faultsweep", "-fault-rates", "-0.1"},
			"[0, 1]",
		},
		{
			"fault rate unparsable",
			[]string{"-experiment", "faultsweep", "-fault-rates", "lots"},
			"bad fault rate",
		},
		{
			"fault rates empty",
			[]string{"-experiment", "faultsweep", "-fault-rates", ""},
			"fault rate",
		},
		{
			"checkpoint with several experiments",
			[]string{"-experiment", "fig6,headline", "-checkpoint", "x.ckpt"},
			"exactly one",
		},
		{
			"checkpoint with all",
			[]string{"-experiment", "all", "-checkpoint", "x.ckpt"},
			"exactly one",
		},
		{
			"checkpoint with unsupported experiment",
			[]string{"-experiment", "sendmail", "-checkpoint", "x.ckpt"},
			"not supported",
		},
		{
			"checkpoint without experiment mode",
			[]string{"-sweep", "-checkpoint", "x.ckpt"},
			"-checkpoint",
		},
		{
			"checkpoint with bench mode",
			[]string{"-bench-baseline", "-checkpoint", "x.ckpt"},
			"-checkpoint",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := run(c.args)
			if err == nil {
				t.Fatalf("run(%v) succeeded, want error", c.args)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("run(%v) error %q does not mention %q", c.args, err, c.want)
			}
		})
	}
}
