#!/usr/bin/env bash
# chaos_check.sh — the worker fleet's chaos gate, run by both
# `make chaos-check` and CI's chaos job (same script, same assertions).
#
# Phase A (crash recovery): start tocttoud with -workers 3 and a
# TOCTTOU_CHAOS schedule that kills each initial worker incarnation at
# its first point a different way — hard crash, torn result write,
# silenced heartbeat (stall), crash between commit and ack. Submit
# examples/scenarios/fig6.yaml, watch it to completion, and diff the
# report against the committed golden: supervision must make the chaos
# invisible, byte for byte. /v1/stats must show the recovery happened
# (restarts, requeued leases, a deduplicated commit — i.e. no lease was
# double-counted).
#
# Phase B (poison point): a schedule that crashes every worker reaching
# point 3 of the grid. With -max-point-retries 3 the point must be
# quarantined — surfaced in the job state, the report appendix, and
# /v1/stats — while the other nine points complete.
#
# Logs land in $CHAOS_CHECK_LOGS (default: a fresh temp dir, printed on
# failure); CI uploads that directory as an artifact when the job fails.
set -u -o pipefail

cd "$(dirname "$0")/.."
LOGS="${CHAOS_CHECK_LOGS:-$(mktemp -d /tmp/chaos-check.XXXXXX)}"
mkdir -p "$LOGS"
WORK="$(mktemp -d /tmp/chaos-check-work.XXXXXX)"
DAEMON_PID=""

fail() {
    echo "chaos-check: FAIL: $*" >&2
    echo "chaos-check: logs in $LOGS" >&2
    exit 1
}

cleanup() {
    if [ -n "$DAEMON_PID" ] && kill -0 "$DAEMON_PID" 2>/dev/null; then
        kill -9 "$DAEMON_PID" 2>/dev/null
    fi
    rm -rf "$WORK"
}
trap cleanup EXIT

# start_daemon <logfile> <datadir> [flags...]: launches tocttoud on an
# ephemeral port, waits for the address file, sets DAEMON_PID and SERVER.
start_daemon() {
    local logfile="$1" datadir="$2"
    shift 2
    rm -f "$WORK/addr.txt"
    "$WORK/tocttoud" -listen 127.0.0.1:0 -data "$datadir" -addr-file "$WORK/addr.txt" "$@" \
        >>"$LOGS/$logfile" 2>&1 &
    DAEMON_PID=$!
    for _ in $(seq 1 100); do
        [ -s "$WORK/addr.txt" ] && break
        kill -0 "$DAEMON_PID" 2>/dev/null || fail "daemon exited at startup (see $LOGS/$logfile)"
        sleep 0.1
    done
    [ -s "$WORK/addr.txt" ] || fail "daemon never wrote its address file"
    SERVER="http://$(cat "$WORK/addr.txt")"
    echo "chaos-check: daemon pid $DAEMON_PID at $SERVER"
}

stop_daemon() {
    kill -TERM "$DAEMON_PID"
    wait "$DAEMON_PID" 2>/dev/null
    DAEMON_PID=""
}

# stat_field <name> <statsfile>: extracts a numeric field from the
# /v1/stats JSON without depending on jq.
stat_field() {
    grep -o "\"$1\":[0-9-]*" "$2" | head -n1 | cut -d: -f2
}

fetch_stats() {
    curl -fsS "$SERVER/v1/stats" >"$1" 2>/dev/null \
        || wget -qO "$1" "$SERVER/v1/stats" \
        || fail "fetching /v1/stats"
}

echo "chaos-check: building binaries"
go build -o "$WORK/tocttoud" ./cmd/tocttoud || fail "building tocttoud"
go build -o "$WORK/tocttou" ./cmd/tocttou || fail "building tocttou"

# ---- Phase A: every initial worker dies once; the report must not care ----
# Worker ids are spawn incarnations: w0/w1/w2 are the initial fleet,
# w3 is the first replacement. Each dies a different way, so supervision
# exercises crash, torn-write, stall-reap, and the commit/ack seam in a
# single campaign.
export TOCTTOU_CHAOS="w0:crash@1;w1:torn@1;w2:stall@1;w3:crash-after@1"
start_daemon tocttoud-phaseA.log "$WORK/data-a" \
    -workers 3 -heartbeat-interval 25ms -lease-timeout 1s

SUBMIT=$("$WORK/tocttou" -server "$SERVER" -submit examples/scenarios/fig6.yaml) \
    || fail "submitting fig6"
FIG6_ID=$(echo "$SUBMIT" | awk '{print $1}')
echo "chaos-check: fig6 submitted as $FIG6_ID under chaos schedule: $TOCTTOU_CHAOS"

"$WORK/tocttou" -server "$SERVER" -watch "$FIG6_ID" \
    >"$LOGS/fig6-chaos-watched.txt" 2>"$LOGS/fig6-chaos-progress.txt" \
    || fail "watching fig6 under chaos (see $LOGS/fig6-chaos-progress.txt)"
diff -u testdata/golden/fig6.txt "$LOGS/fig6-chaos-watched.txt" \
    || fail "chaos-recovered fig6 report is not byte-identical to the golden"
echo "chaos-check: chaos-recovered fig6 report is byte-identical to the golden"

fetch_stats "$LOGS/stats-phaseA.json"
RESTARTS=$(stat_field worker_restarts "$LOGS/stats-phaseA.json")
REQUEUED=$(stat_field leases_requeued "$LOGS/stats-phaseA.json")
DEDUPED=$(stat_field points_deduped "$LOGS/stats-phaseA.json")
COMMITTED=$(stat_field points_committed "$LOGS/stats-phaseA.json")
QUARANTINED=$(stat_field points_quarantined "$LOGS/stats-phaseA.json")
echo "chaos-check: stats: restarts=$RESTARTS requeued=$REQUEUED deduped=$DEDUPED committed=$COMMITTED quarantined=$QUARANTINED"
[ "${RESTARTS:-0}" -ge 4 ] || fail "worker_restarts=$RESTARTS, want >= 4 (each scheduled death restarts once)"
[ "${REQUEUED:-0}" -ge 3 ] || fail "leases_requeued=$REQUEUED, want >= 3"
[ "${DEDUPED:-0}" -ge 1 ] || fail "points_deduped=$DEDUPED, want >= 1 (the crash-after commit must dedupe, not double-count)"
[ "${COMMITTED:-0}" -eq 10 ] || fail "points_committed=$COMMITTED, want exactly 10 (every point exactly once)"
[ "${QUARANTINED:-0}" -eq 0 ] || fail "points_quarantined=$QUARANTINED, want 0 in phase A"
echo "chaos-check: supervision counters confirm recovery with no double-counted lease"

stop_daemon

# ---- Phase B: a poison point is quarantined; the rest complete ----
export TOCTTOU_CHAOS="crash@point=3"
start_daemon tocttoud-phaseB.log "$WORK/data-b" \
    -workers 3 -heartbeat-interval 25ms -lease-timeout 1s -max-point-retries 3

SUBMIT=$("$WORK/tocttou" -server "$SERVER" -submit examples/scenarios/fig6.yaml) \
    || fail "submitting fig6 for the poison-point phase"
POISON_ID=$(echo "$SUBMIT" | awk '{print $1}')
echo "chaos-check: fig6 submitted as $POISON_ID with poison point 3"

# The watch ends when the job settles; the poison point never commits,
# so the client exits on the end event with 9/10 points streamed.
"$WORK/tocttou" -server "$SERVER" -watch "$POISON_ID" \
    >"$LOGS/fig6-poison-watched.txt" 2>"$LOGS/fig6-poison-progress.txt"
grep -q "quarantined points: 1 of 10" "$LOGS/fig6-poison-watched.txt" \
    || fail "report lacks the quarantine appendix (see $LOGS/fig6-poison-watched.txt)"
echo "chaos-check: report names the quarantined point while the campaign completed"

fetch_stats "$LOGS/stats-phaseB.json"
COMMITTED=$(stat_field points_committed "$LOGS/stats-phaseB.json")
QUARANTINED=$(stat_field points_quarantined "$LOGS/stats-phaseB.json")
RESTARTS=$(stat_field worker_restarts "$LOGS/stats-phaseB.json")
echo "chaos-check: stats: committed=$COMMITTED quarantined=$QUARANTINED restarts=$RESTARTS"
[ "${QUARANTINED:-0}" -eq 1 ] || fail "points_quarantined=$QUARANTINED, want 1"
[ "${COMMITTED:-0}" -eq 9 ] || fail "points_committed=$COMMITTED, want 9 (all but the poison point)"
[ "${RESTARTS:-0}" -ge 3 ] || fail "worker_restarts=$RESTARTS, want >= 3 (the poison point killed max-point-retries workers)"
echo "chaos-check: poison point quarantined after 3 kills; other 9 points committed"

stop_daemon
echo "chaos-check: PASS"
