#!/usr/bin/env bash
# serve_check.sh — the campaign service's end-to-end gate, run by both
# `make serve-check` and CI's service job (same script, same assertions).
#
# Phase 1 (equivalence): build tocttoud + tocttou, start the daemon on a
# loopback port, submit examples/scenarios/fig6.yaml, stream it with
# -watch, and diff the watched report against the committed golden —
# byte-identical is the service's headline correctness contract.
#
# Phase 2 (durability): submit the seconds-long service-kill campaign,
# wait until points are committed on both sides of a cut, kill -9 the
# daemon mid-campaign, restart it over the same data directory, watch
# the resumed campaign to completion, and diff the report against an
# uninterrupted local run of the same scenario file — bit-identical
# resume. A re-submission of the finished campaign must be a cache hit.
#
# Phase 3 (fleet drain): run the same campaign under -workers 3, SIGTERM
# the daemon mid-campaign, assert the drain reaped every worker process
# (no orphans), restart, and require the resumed report bit-identical to
# the same uninterrupted local reference.
#
# Logs land in $SERVE_CHECK_LOGS (default: a fresh temp dir, printed on
# failure); CI uploads that directory as an artifact when the job fails.
set -u -o pipefail

cd "$(dirname "$0")/.."
LOGS="${SERVE_CHECK_LOGS:-$(mktemp -d /tmp/serve-check.XXXXXX)}"
mkdir -p "$LOGS"
WORK="$(mktemp -d /tmp/serve-check-work.XXXXXX)"
DATA="$WORK/data"
DAEMON_PID=""

fail() {
    echo "serve-check: FAIL: $*" >&2
    echo "serve-check: logs in $LOGS" >&2
    exit 1
}

cleanup() {
    if [ -n "$DAEMON_PID" ] && kill -0 "$DAEMON_PID" 2>/dev/null; then
        kill -9 "$DAEMON_PID" 2>/dev/null
    fi
    rm -rf "$WORK"
}
trap cleanup EXIT

# start_daemon <logfile> [flags...]: launches tocttoud over $DATA on an
# ephemeral port with any extra flags, waits for the address file, and
# sets DAEMON_PID and SERVER.
start_daemon() {
    local logfile="$1"
    shift
    rm -f "$WORK/addr.txt"
    "$WORK/tocttoud" -listen 127.0.0.1:0 -data "$DATA" -addr-file "$WORK/addr.txt" "$@" \
        >>"$LOGS/$logfile" 2>&1 &
    DAEMON_PID=$!
    for _ in $(seq 1 100); do
        [ -s "$WORK/addr.txt" ] && break
        kill -0 "$DAEMON_PID" 2>/dev/null || fail "daemon exited at startup (see $LOGS/$logfile)"
        sleep 0.1
    done
    [ -s "$WORK/addr.txt" ] || fail "daemon never wrote its address file"
    SERVER="http://$(cat "$WORK/addr.txt")"
    echo "serve-check: daemon pid $DAEMON_PID at $SERVER"
}

# committed <id>: prints the job's committed-point count.
committed() {
    "$WORK/tocttou" -server "$SERVER" -jobs 2>/dev/null \
        | awk -v id="$1" '$1 == id { split($3, a, "/"); print a[1] }'
}

echo "serve-check: building binaries"
go build -o "$WORK/tocttoud" ./cmd/tocttoud || fail "building tocttoud"
go build -o "$WORK/tocttou" ./cmd/tocttou || fail "building tocttou"

# ---- Phase 1: submit fig6, watch, diff against the committed golden ----
start_daemon tocttoud-phase1.log

SUBMIT=$("$WORK/tocttou" -server "$SERVER" -submit examples/scenarios/fig6.yaml) \
    || fail "submitting fig6"
FIG6_ID=$(echo "$SUBMIT" | awk '{print $1}')
echo "serve-check: fig6 submitted as $FIG6_ID"

"$WORK/tocttou" -server "$SERVER" -watch "$FIG6_ID" \
    >"$LOGS/fig6-watched.txt" 2>"$LOGS/fig6-progress.txt" \
    || fail "watching fig6 (see $LOGS/fig6-progress.txt)"
diff -u testdata/golden/fig6.txt "$LOGS/fig6-watched.txt" \
    || fail "watched fig6 report is not byte-identical to the golden"
echo "serve-check: watched fig6 report is byte-identical to the golden"

# A malformed spec's 400 body must be the exact message a local run prints.
printf 'name: broken\nfrobnicate: 1\n' >"$WORK/broken.yaml"
SERVER_ERR=$("$WORK/tocttou" -server "$SERVER" -submit "$WORK/broken.yaml" 2>&1)
[ $? -ne 0 ] || fail "server accepted a malformed spec"
# The client submits the file's basename, so invoke the local reference
# with the same relative name to get the identical path in the message.
LOCAL_ERR=$(cd "$WORK" && ./tocttou -scenario broken.yaml 2>&1)
[ "$SERVER_ERR" = "$LOCAL_ERR" ] \
    || fail "spec errors diverged:"$'\n'"  server: $SERVER_ERR"$'\n'"  local:  $LOCAL_ERR"
echo "serve-check: malformed-spec error round-trips byte-identically"

# ---- Phase 2: kill -9 mid-campaign, restart, assert bit-identical resume ----
SUBMIT=$("$WORK/tocttou" -server "$SERVER" -submit examples/scenarios/service-kill.yaml) \
    || fail "submitting service-kill"
KILL_ID=$(echo "$SUBMIT" | awk '{print $1}')
TOTAL=$(echo "$SUBMIT" | sed -n 's/.*(\([0-9]*\) points.*/\1/p')
echo "serve-check: service-kill submitted as $KILL_ID ($TOTAL points)"

# Wait for a genuine mid-campaign state: >=2 points committed, <TOTAL.
DONE=0
for _ in $(seq 1 600); do
    DONE=$(committed "$KILL_ID")
    DONE=${DONE:-0}
    [ "$DONE" -ge 2 ] && break
    sleep 0.05
done
[ "$DONE" -ge 2 ] || fail "no points committed within 30s (see $LOGS/tocttoud-phase1.log)"
[ "$DONE" -lt "$TOTAL" ] || fail "campaign finished before the kill; grow service-kill.yaml's rounds"
echo "serve-check: killing daemon with $DONE/$TOTAL points committed"
kill -9 "$DAEMON_PID"
wait "$DAEMON_PID" 2>/dev/null
DAEMON_PID=""

start_daemon tocttoud-phase2.log
"$WORK/tocttou" -server "$SERVER" -watch "$KILL_ID" \
    >"$LOGS/service-kill-watched.txt" 2>"$LOGS/service-kill-progress.txt" \
    || fail "watching resumed service-kill (see $LOGS/service-kill-progress.txt)"

# The reference: an uninterrupted local run of the very same file.
go run ./cmd/tocttou -scenario examples/scenarios/service-kill.yaml -golden "$WORK/golden" \
    >/dev/null || fail "local service-kill reference run"
diff -u "$WORK/golden/service-kill.txt" "$LOGS/service-kill-watched.txt" \
    || fail "resumed report is not bit-identical to the uninterrupted local run"
echo "serve-check: resumed report is bit-identical to the uninterrupted local run"

# The finished campaign's identity is content-derived: resubmitting the
# same file is a cache hit, not a re-run.
RESUBMIT=$("$WORK/tocttou" -server "$SERVER" -submit examples/scenarios/service-kill.yaml) \
    || fail "resubmitting service-kill"
echo "$RESUBMIT" | grep -q "cached" || fail "resubmit was not served from the completed store: $RESUBMIT"
echo "$RESUBMIT" | awk '{print $1}' | grep -qx "$KILL_ID" || fail "resubmit minted a new job id: $RESUBMIT"
echo "serve-check: identical resubmission is a cache hit"

kill -TERM "$DAEMON_PID"
wait "$DAEMON_PID" 2>/dev/null
DAEMON_PID=""

# ---- Phase 3: fleet mode — SIGTERM drain reaps workers, resume is exact ----
DATA="$WORK/data-fleet"
start_daemon tocttoud-phase3.log -workers 3 -heartbeat-interval 25ms

SUBMIT=$("$WORK/tocttou" -server "$SERVER" -submit examples/scenarios/service-kill.yaml) \
    || fail "submitting service-kill to the fleet daemon"
FLEET_ID=$(echo "$SUBMIT" | awk '{print $1}')
echo "serve-check: fleet service-kill submitted as $FLEET_ID"

DONE=0
for _ in $(seq 1 600); do
    DONE=$(committed "$FLEET_ID")
    DONE=${DONE:-0}
    [ "$DONE" -ge 2 ] && break
    sleep 0.05
done
[ "$DONE" -ge 2 ] || fail "fleet committed no points within 30s (see $LOGS/tocttoud-phase3.log)"
[ "$DONE" -lt "$TOTAL" ] || fail "fleet campaign finished before the drain; grow service-kill.yaml's rounds"
echo "serve-check: draining fleet daemon with $DONE/$TOTAL points committed"
kill -TERM "$DAEMON_PID"
wait "$DAEMON_PID" 2>/dev/null
DAEMON_PID=""

# The drain must have reaped every worker subprocess: nothing running
# -worker may survive the daemon.
if command -v pgrep >/dev/null 2>&1; then
    if ORPHANS=$(pgrep -f "tocttoud .*-worker" 2>/dev/null) && [ -n "$ORPHANS" ]; then
        fail "orphaned worker processes survived the drain: $ORPHANS"
    fi
    echo "serve-check: no orphaned workers after the drain"
fi

start_daemon tocttoud-phase3b.log -workers 3 -heartbeat-interval 25ms
"$WORK/tocttou" -server "$SERVER" -watch "$FLEET_ID" \
    >"$LOGS/fleet-watched.txt" 2>"$LOGS/fleet-progress.txt" \
    || fail "watching resumed fleet campaign (see $LOGS/fleet-progress.txt)"
diff -u "$WORK/golden/service-kill.txt" "$LOGS/fleet-watched.txt" \
    || fail "fleet drain/resume report is not bit-identical to the uninterrupted local run"
echo "serve-check: fleet drain/resume report is bit-identical to the uninterrupted local run"

kill -TERM "$DAEMON_PID"
wait "$DAEMON_PID" 2>/dev/null
DAEMON_PID=""
echo "serve-check: PASS"
