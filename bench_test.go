package tocttou_test

// The benchmark harness regenerates every table and figure of the paper's
// evaluation from fresh simulated campaigns, and adds ablation benchmarks
// for the design decisions called out in DESIGN.md plus microbenchmarks of
// the substrates. Each experiment benchmark reports its headline numbers
// as custom metrics (success_pct, L_us, D_us, ...) so bench_output.txt
// doubles as the measured-results record for EXPERIMENTS.md.
//
// Round counts are reduced relative to the paper's 500 to keep a full
// -bench=. run to minutes; the CLI (cmd/tocttou) runs the full counts.

import (
	"fmt"
	"os"
	"sync"
	"testing"
	"time"

	"tocttou/internal/attack"
	"tocttou/internal/core"
	"tocttou/internal/experiments"
	"tocttou/internal/fs"
	"tocttou/internal/machine"
	"tocttou/internal/prog"
	"tocttou/internal/sim"
	"tocttou/internal/victim"
)

// benchRounds is the per-campaign round count for experiment benchmarks.
const benchRounds = 150

var renderOnce sync.Map

// renderFirst renders an experiment result to stdout once per benchmark
// name, so the bench log contains the regenerated tables and figures.
func renderFirst(b *testing.B, res experiments.Result) {
	if _, loaded := renderOnce.LoadOrStore(b.Name(), true); loaded {
		return
	}
	fmt.Printf("\n######## %s ########\n", b.Name())
	if err := res.Render(os.Stdout); err != nil {
		b.Fatal(err)
	}
	fmt.Println()
}

func runExperiment(b *testing.B, name string, opt experiments.Options) experiments.Result {
	b.Helper()
	var last experiments.Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.Run(name, opt)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	renderFirst(b, last)
	return last
}

// --- One benchmark per paper table/figure --------------------------------

// BenchmarkFig6ViUniprocessor regenerates Figure 6: vi attack success rate
// vs file size on the uniprocessor (paper: ~1.5%..18%, noisy).
func BenchmarkFig6ViUniprocessor(b *testing.B) {
	res := runExperiment(b, "fig6", experiments.Options{Rounds: benchRounds})
	fig := res.(*experiments.Fig6Result)
	first, last := fig.Rows[0], fig.Rows[len(fig.Rows)-1]
	b.ReportMetric(first.Result.Rate()*100, "rate100KB_pct")
	b.ReportMetric(last.Result.Rate()*100, "rate1MB_pct")
}

// BenchmarkViSMPSweep regenerates the §5 headline: ~100% success for every
// size from 20KB to 1MB on the SMP.
func BenchmarkViSMPSweep(b *testing.B) {
	res := runExperiment(b, "vismp", experiments.Options{
		Rounds: 60,
		Sizes:  []int{20, 100, 200, 400, 600, 800, 1000},
	})
	sweep := res.(*experiments.ViSMPResult)
	min := 1.0
	for _, row := range sweep.Rows {
		if r := row.Result.Rate(); r < min {
			min = r
		}
	}
	b.ReportMetric(min*100, "min_rate_pct")
}

// BenchmarkFig7ViSMPLD regenerates Figure 7: L linear in size (~16.5µs/KB),
// D flat ≈41µs.
func BenchmarkFig7ViSMPLD(b *testing.B) {
	res := runExperiment(b, "fig7", experiments.Options{Rounds: 80})
	fig := res.(*experiments.Fig7Result)
	b.ReportMetric(fig.Slope, "L_slope_us_per_KB")
	b.ReportMetric(fig.Rows[len(fig.Rows)-1].Result.D.Mean(), "D_1MB_us")
}

// BenchmarkTable1ViSMPOneByte regenerates Table 1 (paper: L=61.6±3.78,
// D=41.1±2.73, success ≈96%).
func BenchmarkTable1ViSMPOneByte(b *testing.B) {
	res := runExperiment(b, "table1", experiments.Options{Rounds: 400})
	tbl := res.(*experiments.Table1Result)
	b.ReportMetric(tbl.Campaign.L.Mean(), "L_us")
	b.ReportMetric(tbl.Campaign.D.Mean(), "D_us")
	b.ReportMetric(tbl.Campaign.Rate()*100, "rate_pct")
	b.ReportMetric(tbl.PredictedMC*100, "predicted_pct")
}

// BenchmarkTable2GeditSMP regenerates Table 2 (paper: L=11.6, D=32.7,
// predicted ~35%, observed ≈83%).
func BenchmarkTable2GeditSMP(b *testing.B) {
	res := runExperiment(b, "table2", experiments.Options{Rounds: 400})
	tbl := res.(*experiments.Table2Result)
	b.ReportMetric(tbl.Campaign.L.Mean(), "L_us")
	b.ReportMetric(tbl.Campaign.D.Mean(), "D_us")
	b.ReportMetric(tbl.Campaign.Rate()*100, "observed_pct")
	b.ReportMetric(tbl.PredictedPoint*100, "predicted_pct")
}

// BenchmarkGeditUniprocessor regenerates §4.2: essentially zero success.
func BenchmarkGeditUniprocessor(b *testing.B) {
	res := runExperiment(b, "geditup", experiments.Options{Rounds: benchRounds})
	b.ReportMetric(res.(*experiments.CampaignSummary).Campaign.Rate()*100, "rate_pct")
}

// BenchmarkFig8GeditMulticoreV1 regenerates Figure 8: a failed naive
// attack timeline with the in-window page-fault trap.
func BenchmarkFig8GeditMulticoreV1(b *testing.B) {
	res := runExperiment(b, "fig8", experiments.Options{})
	tl := res.(*experiments.TimelineResult)
	b.ReportMetric(tl.Round.LD.Dmicros(), "D_us")
}

// BenchmarkGeditMulticoreV1 regenerates §6.2.1: the naive attacker loses
// the 3µs window (paper: almost no success).
func BenchmarkGeditMulticoreV1(b *testing.B) {
	res := runExperiment(b, "geditmc1", experiments.Options{Rounds: benchRounds})
	b.ReportMetric(res.(*experiments.CampaignSummary).Campaign.Rate()*100, "rate_pct")
}

// BenchmarkFig10GeditMulticoreV2 regenerates Figure 10: a successful
// pre-faulted attack timeline.
func BenchmarkFig10GeditMulticoreV2(b *testing.B) {
	res := runExperiment(b, "fig10", experiments.Options{})
	tl := res.(*experiments.TimelineResult)
	b.ReportMetric(tl.Round.LD.Dmicros(), "D_us")
}

// BenchmarkGeditMulticoreV2 regenerates §6.2.2: pre-faulting turns
// near-zero into many successes.
func BenchmarkGeditMulticoreV2(b *testing.B) {
	res := runExperiment(b, "geditmc2", experiments.Options{Rounds: benchRounds})
	b.ReportMetric(res.(*experiments.CampaignSummary).Campaign.Rate()*100, "rate_pct")
}

// BenchmarkFig11Pipelining regenerates Figure 11: the pipelined attacker's
// symlink completes while unlink is still truncating.
func BenchmarkFig11Pipelining(b *testing.B) {
	res := runExperiment(b, "fig11", experiments.Options{})
	fig := res.(*experiments.Fig11Result)
	var seq500, par500 float64
	for _, row := range fig.Rows {
		if row.SizeKB == 500 {
			if row.Parallel {
				par500 = row.AttackDone
			} else {
				seq500 = row.AttackDone
			}
		}
	}
	if par500 > 0 {
		b.ReportMetric(seq500/par500, "speedup_500KB_x")
	}
}

// BenchmarkModelValidation compares Equation 1 / formula (1) predictions
// against simulated campaigns across regimes.
func BenchmarkModelValidation(b *testing.B) {
	res := runExperiment(b, "model", experiments.Options{Rounds: benchRounds})
	b.ReportMetric(res.(*experiments.ModelValidationResult).MeanAbsErr*100, "mean_abs_err_pct")
}

// BenchmarkHeadline regenerates the cross-machine comparison table — the
// paper's central claim in one place.
func BenchmarkHeadline(b *testing.B) {
	res := runExperiment(b, "headline", experiments.Options{Rounds: benchRounds})
	h := res.(*experiments.HeadlineResult)
	for _, row := range h.Rows {
		if row.Scenario == "vi 100KB" && row.Machine == "SMP 2-way" {
			b.ReportMetric(row.Rate*100, "vi_smp_pct")
		}
		if row.Scenario == "gedit v1" && row.Machine == "SMP 2-way" {
			b.ReportMetric(row.Rate*100, "gedit_smp_pct")
		}
	}
}

// BenchmarkDefense regenerates the extension table: EDGI-style guarding
// drives the attacks back to zero.
func BenchmarkDefense(b *testing.B) {
	res := runExperiment(b, "defense", experiments.Options{Rounds: 100})
	d := res.(*experiments.DefenseResult)
	worst := 0.0
	for _, row := range d.Rows {
		if row.Enforced > worst {
			worst = row.Enforced
		}
	}
	b.ReportMetric(worst*100, "worst_guarded_pct")
}

// BenchmarkSendmail regenerates the §1-example extension: the blind
// flip-flop attack on the <lstat, open> mailbox pair across machines.
func BenchmarkSendmail(b *testing.B) {
	res := runExperiment(b, "sendmail", experiments.Options{Rounds: benchRounds})
	sm := res.(*experiments.SendmailResult)
	for _, row := range sm.Rows {
		switch {
		case row.Machine == "uniprocessor-1.7GHz":
			b.ReportMetric(row.Result.Rate()*100, "up_pct")
		case row.Machine == "smp-1.7GHz-2way":
			b.ReportMetric(row.Result.Rate()*100, "smp_pct")
		}
	}
}

// BenchmarkEq1TermStudy regenerates the Equation-1 term dissection:
// suspension on one CPU, scheduling under load, and attacker priority.
func BenchmarkEq1TermStudy(b *testing.B) {
	res := runExperiment(b, "eq1", experiments.Options{Rounds: 120})
	eq := res.(*experiments.Eq1Result)
	if len(eq.Rows) == 4 {
		b.ReportMetric(eq.Rows[1].Observed*100, "smp_noload_pct")
		b.ReportMetric(eq.Rows[2].Observed*100, "smp_loaded_pct")
		b.ReportMetric(eq.Rows[3].Observed*100, "smp_prio_pct")
	}
}

// BenchmarkSessionStudy regenerates the repeated-saves extension: risk
// compounds geometrically over an editing session.
func BenchmarkSessionStudy(b *testing.B) {
	res := runExperiment(b, "session", experiments.Options{Rounds: 120})
	s := res.(*experiments.SessionResult)
	b.ReportMetric(s.PerSave*100, "per_save_pct")
	b.ReportMetric(s.Rows[len(s.Rows)-1].Observed*100, "twenty_saves_pct")
}

// BenchmarkGapSweep regenerates the window-width sensitivity curve that
// interpolates between the paper's two machines.
func BenchmarkGapSweep(b *testing.B) {
	res := runExperiment(b, "gapsweep", experiments.Options{Rounds: 120})
	g := res.(*experiments.GapSweepResult)
	for _, row := range g.Rows {
		if row.GapMicros == 3 {
			b.ReportMetric(row.Observed*100, "gap3us_pct")
		}
	}
}

// BenchmarkPatchedVictims regenerates the application-fix extension:
// fd-based fchown/fchmod removes the TOCTTOU pair entirely.
func BenchmarkPatchedVictims(b *testing.B) {
	res := runExperiment(b, "patched", experiments.Options{Rounds: 120})
	p := res.(*experiments.PatchedResult)
	worst := 0.0
	for _, row := range p.Rows {
		if row.Patched > worst {
			worst = row.Patched
		}
	}
	b.ReportMetric(worst*100, "worst_patched_pct")
}

// --- Ablations of DESIGN.md decisions ------------------------------------

// BenchmarkAblationNoiseOff removes background kernel activity: the vi
// 1-byte SMP attack, ~96% with noise (Table 1), becomes deterministic
// certainty — noise is what keeps success statistical (§5's failed runs).
func BenchmarkAblationNoiseOff(b *testing.B) {
	quiet := machine.SMP2()
	quiet.Noise = sim.NoiseConfig{}
	quiet.Jitter = 0
	noisy := machine.SMP2()
	var rateQuiet, rateNoisy float64
	for i := 0; i < b.N; i++ {
		q := mustCampaign(b, viScenario(quiet, 1, 900+int64(i)), benchRounds)
		n := mustCampaign(b, viScenario(noisy, 1, 900+int64(i)), benchRounds)
		rateQuiet, rateNoisy = q.Rate(), n.Rate()
	}
	b.ReportMetric(rateQuiet*100, "quiet_pct")
	b.ReportMetric(rateNoisy*100, "noisy_pct")
	printOnce(b, "noise off: %.1f%% vs noisy: %.1f%% (Table 1 says ~96%%, not 100%%)\n",
		rateQuiet*100, rateNoisy*100)
}

// BenchmarkAblationOnePhaseUnlink merges unlink's truncation into its
// detach phase (directory lock held throughout): the §7 pipelining win
// disappears because the symlink can no longer overlap the truncation.
func BenchmarkAblationOnePhaseUnlink(b *testing.B) {
	onePhase := machine.MultiCore()
	// Fold the per-KB truncation cost into the detach phase.
	onePhase.Latency.UnlinkDetach += onePhase.Latency.TruncBase +
		time.Duration(float64(onePhase.Latency.TruncPerKB)*500)
	onePhase.Latency.TruncBase = 0
	onePhase.Latency.TruncPerKB = 0

	var overlap, noOverlap float64
	for i := 0; i < b.N; i++ {
		overlap = pipelineGain(b, machine.MultiCore(), 950+int64(i))
		noOverlap = pipelineGain(b, onePhase, 970+int64(i))
	}
	b.ReportMetric(overlap, "two_phase_speedup_x")
	b.ReportMetric(noOverlap, "one_phase_speedup_x")
	printOnce(b, "pipelining speedup at 500KB: two-phase unlink %.1fx vs one-phase %.1fx\n",
		overlap, noOverlap)
}

// BenchmarkAblationUnsynchronizedLookups removes lookup blocking behind
// rename's dentry swap: the attacker loses the detection synchronization
// and the gedit SMP rate collapses far below the paper's 83%.
func BenchmarkAblationUnsynchronizedLookups(b *testing.B) {
	var synced, unsynced float64
	for i := 0; i < b.N; i++ {
		sc := geditScenario(machine.SMP2(), 980+int64(i))
		s := mustCampaign(b, sc, benchRounds)
		sc.UnsynchronizedLookups = true
		u := mustCampaign(b, sc, benchRounds)
		synced, unsynced = s.Rate(), u.Rate()
	}
	b.ReportMetric(synced*100, "synced_pct")
	b.ReportMetric(unsynced*100, "unsynced_pct")
	printOnce(b, "gedit SMP: synced lookups %.1f%% vs unsynchronized %.1f%%\n",
		synced*100, unsynced*100)
}

// --- Substrate microbenchmarks -------------------------------------------

// BenchmarkKernelEventThroughput measures raw simulator event processing.
func BenchmarkKernelEventThroughput(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k := sim.New(sim.Config{CPUs: 2, Quantum: time.Second, Seed: int64(i)})
		p := k.NewProcess("p", 0, 0)
		for t := 0; t < 2; t++ {
			k.Spawn(p, "w", func(task *sim.Task) {
				for j := 0; j < 5000; j++ {
					task.Compute(time.Microsecond)
				}
			})
		}
		if err := k.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFSStat measures the cost of a simulated stat syscall.
func BenchmarkFSStat(b *testing.B) {
	b.ReportAllocs()
	k := sim.New(sim.Config{CPUs: 1, Quantum: time.Hour, Seed: 1, MaxTime: time.Hour, MaxSteps: 1 << 40})
	f := fs.New(fs.Config{Latency: fs.DefaultProfile()})
	f.MustMkdirAll("/home/alice", 0o755, 1000, 1000)
	f.MustWriteFile("/home/alice/doc", 4096, 0o644, 1000, 1000)
	p := k.NewProcess("p", 0, 0)
	k.Spawn(p, "stats", func(task *sim.Task) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := f.Stat(task, "/home/alice/doc"); err != nil {
				b.Error(err)
				return
			}
		}
	})
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkViRoundSMP measures one full vi attack round.
func BenchmarkViRoundSMP(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sc := viScenario(machine.SMP2(), 100<<10, int64(i+1))
		if _, err := core.RunRound(sc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGeditRoundMulticore measures one full gedit attack round.
func BenchmarkGeditRoundMulticore(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sc := geditScenario(machine.MultiCore(), int64(i+1))
		if _, err := core.RunRound(sc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTracedRoundOverhead measures the cost of full event tracing.
func BenchmarkTracedRoundOverhead(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sc := viScenario(machine.SMP2(), 100<<10, int64(i+1))
		sc.Trace = true
		if _, err := core.RunRound(sc); err != nil {
			b.Fatal(err)
		}
	}
}

// --- helpers --------------------------------------------------------------

func viScenario(m machine.Profile, size int64, seed int64) core.Scenario {
	return core.Scenario{
		Machine: m, Victim: victim.NewVi(), Attacker: attack.NewV1(),
		UseSyscall: "chown", FileSize: size, Seed: seed,
	}
}

func geditScenario(m machine.Profile, seed int64) core.Scenario {
	return core.Scenario{
		Machine: m, Victim: victim.NewGedit(), Attacker: attack.NewV1(),
		UseSyscall: "chmod", FileSize: 2 << 10, Seed: seed,
	}
}

func mustCampaign(b *testing.B, sc core.Scenario, rounds int) core.CampaignResult {
	b.Helper()
	res, err := core.RunCampaign(sc, rounds)
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// pipelineGain measures the sequential/pipelined completion ratio for a
// 500KB gedit attack on machine m.
func pipelineGain(b *testing.B, m machine.Profile, seed int64) float64 {
	b.Helper()
	seq := attackDone(b, m, attack.NewV2(), seed)
	par := attackDone(b, m, attack.NewPipelined(), seed)
	if par == 0 {
		return 0
	}
	return seq / par
}

// attackDone returns the µs from detection to completed redirection.
func attackDone(b *testing.B, m machine.Profile, att prog.Program, seed int64) float64 {
	b.Helper()
	sc := core.Scenario{
		Machine: m, Victim: victim.NewGedit(), Attacker: att,
		UseSyscall: "chmod", FileSize: 500 << 10, Seed: seed, Trace: true,
	}
	target := core.DefaultPaths().Target
	for i := 0; i < 256; i++ {
		r, err := core.RunRound(sc)
		if err != nil {
			b.Fatal(err)
		}
		if r.LD.Detected {
			var enter sim.Time
			var have bool
			for _, e := range r.Events {
				if e.PID != r.AttackerPID || e.Label != "symlink" || e.Path != target {
					continue
				}
				if e.Kind == sim.EvSyscallEnter {
					enter, have = e.T, true
				}
				if e.Kind == sim.EvSyscallExit && have && e.Arg == 0 {
					return e.T.Sub(r.LD.StatEnter).Seconds() * 1e6
				}
			}
			_ = enter
		}
		sc.Seed += 7919
	}
	b.Fatal("no detected round with completed symlink")
	return 0
}

var printedOnce sync.Map

func printOnce(b *testing.B, format string, args ...any) {
	if _, loaded := printedOnce.LoadOrStore(b.Name(), true); loaded {
		return
	}
	fmt.Printf("  ablation %s: ", b.Name())
	fmt.Printf(format, args...)
}
